"""Physical pages: fixed-slot columnar (and row) pages with lineage.

Section 2.1/2.2: data lives in fixed-size pages. *Base pages* are
read-only and compressed; *tail pages* are append-only and write-once —
once a slot is written it is never overwritten, even if the writing
transaction aborts (aborted tail records become tombstones, Section
5.1.3). Merged pages carry their lineage in-page as a *tail-page
sequence number* (TPS, Section 4.2) recording how many tail records have
been consolidated into them.

Two physical layouts implement the fixed-slot columnar page:

* :class:`Page` stores Python objects in a list — the original layout,
  kept as the semantics oracle behind ``EngineConfig.bytes_pages=False``
  (mirroring the PR-5 ``flat_appends`` discipline).
* :class:`BytesPage` (the default) stores one signed 64-bit cell per
  slot in an ``array('q')`` buffer with parallel written/null bitmaps:
  a cell write is a C-level store, :meth:`Page.as_numpy` /
  :meth:`Page.as_numpy_masked` are zero-copy ``np.frombuffer`` views of
  the live buffer, ``masked_total`` sums the buffer directly, and the
  raw buffer *is* the on-disk image (``storage/serialization.py`` writes
  it verbatim, CRC32 over the raw bytes). Values no int64 slot can hold
  (∅-less non-ints, wide ints) spill to a per-page object sidecar; ∅ is
  a null-bitmap bit over a zeroed cell, so buffer sums need no masking.

"32 KB page" becomes "N slots per page" either way. Read-only integer
pages expose a cached NumPy view (:meth:`Page.as_numpy`) so analytical
scans enjoy the columnar-layout speedup the paper measures in Table 8.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterator, Sequence

import numpy as np

from ..errors import PageFullError, PageImmutableError
from ..analysis.locks import make_lock
from .types import NULL, NULL_RID, PageKind, is_null


class _Unwritten:
    """Sentinel for a slot that was never written (≠ the special null ∅)."""

    _instance: "_Unwritten | None" = None

    def __new__(cls) -> "_Unwritten":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<unwritten>"


#: Slot content before any write.
UNWRITTEN = _Unwritten()


class Page:
    """A fixed-capacity page holding one column's values.

    Parameters
    ----------
    page_id:
        Unique id within the owning table (page-directory key).
    kind:
        Role of the page (base / tail / merged / compressed tail).
    capacity:
        Number of record slots.
    column:
        Physical column index stored by this page (purely informational;
        the page directory keys pages by column).

    Write-once discipline: :meth:`write_slot` raises
    :class:`~repro.errors.PageImmutableError` when the target slot was
    already written or when the page is frozen. Base and merged pages
    are written fully by their creator (insert-merge or merge) and then
    frozen; tail pages accumulate slots and are implicitly immutable per
    slot.
    """

    __slots__ = (
        "page_id", "kind", "capacity", "column", "_values", "_num_written",
        "_frozen", "tps_rid", "merge_count", "_numpy_cache", "_lock",
        "deallocated",
    )

    def __init__(self, page_id: int, kind: PageKind, capacity: int,
                 column: int | None = None) -> None:
        if capacity <= 0:
            raise ValueError("page capacity must be positive")
        self.page_id = page_id
        self.kind = kind
        self.capacity = capacity
        self.column = column
        self._values: list[Any] = [UNWRITTEN] * capacity
        self._num_written = 0
        self._frozen = False
        #: Lineage: RID of the most recent tail record merged into this
        #: page (tail RIDs descend, so smaller == newer). NULL_RID means
        #: no merge has touched this page (TPS 0 in the paper).
        self.tps_rid: int = NULL_RID
        #: Lineage: number of merges this page has been through.
        self.merge_count: int = 0
        self._numpy_cache: np.ndarray | None = None
        self._lock = make_lock("page")
        #: Set by the epoch manager when the page is reclaimed.
        self.deallocated = False

    # -- writes ----------------------------------------------------------

    def write_slot(self, slot: int, value: Any) -> None:
        """Write *value* into *slot* exactly once."""
        if self._frozen:
            raise PageImmutableError(
                "page %d is frozen (%s)" % (self.page_id, self.kind.value))
        if not 0 <= slot < self.capacity:
            raise PageFullError(
                "slot %d out of range for capacity %d"
                % (slot, self.capacity))
        with self._lock:
            if self._values[slot] is not UNWRITTEN:
                raise PageImmutableError(
                    "slot %d of page %d already written (write-once)"
                    % (slot, self.page_id))
            self._values[slot] = value
            self._num_written += 1

    def write_slot_fast(self, slot: int, value: Any) -> None:
        """Write-once write of a slot the caller exclusively owns.

        The tail-append hot path: the slot index comes from the tail
        allocator (always in range, and handed to exactly one writer)
        and tail pages are never frozen while accepting appends, so the
        bounds and frozen checks of :meth:`write_slot` are redundant.
        The write-once check stays — it is the storage invariant that
        catches double-append bugs.
        """
        with self._lock:
            if self._values[slot] is not UNWRITTEN:
                raise PageImmutableError(
                    "slot %d of page %d already written (write-once)"
                    % (slot, self.page_id))
            self._values[slot] = value
            self._num_written += 1

    def write_slot_pair_fast(self, slot1: int, value1: Any,
                             slot2: int, value2: Any) -> None:
        """Two exclusively-owned write-once slots under one lock hold.

        The fused snapshot+update tail append writes adjacent slots of
        the same page for every shared column; one acquisition covers
        both (same contract as :meth:`write_slot_fast`).
        """
        with self._lock:
            values = self._values
            if values[slot1] is not UNWRITTEN \
                    or values[slot2] is not UNWRITTEN:
                raise PageImmutableError(
                    "slot %d/%d of page %d already written (write-once)"
                    % (slot1, slot2, self.page_id))
            values[slot1] = value1
            values[slot2] = value2
            self._num_written += 2

    def fill(self, values: Sequence[Any]) -> None:
        """Bulk-write a fresh page (merge fast path); then freeze it."""
        if self._num_written:
            raise PageImmutableError(
                "fill() requires an empty page; %d slots already written"
                % self._num_written)
        if len(values) > self.capacity:
            raise PageFullError(
                "%d values exceed capacity %d" % (len(values), self.capacity))
        with self._lock:
            for slot, value in enumerate(values):
                self._values[slot] = value
            self._num_written = len(values)
        self.freeze()

    def freeze(self) -> None:
        """Mark the page read-only (base/merged pages after creation)."""
        self._frozen = True

    @property
    def frozen(self) -> bool:
        """True when the page accepts no further writes."""
        return self._frozen

    # -- reads -----------------------------------------------------------

    def read_slot(self, slot: int) -> Any:
        """Return the value at *slot* (may be the special null ∅)."""
        if not 0 <= slot < self.capacity:
            raise PageFullError(
                "slot %d out of range for capacity %d"
                % (slot, self.capacity))
        value = self._values[slot]
        if value is UNWRITTEN:
            raise PageImmutableError(
                "slot %d of page %d was never written"
                % (slot, self.page_id))
        return value

    def is_written(self, slot: int) -> bool:
        """True when *slot* holds a value."""
        if not 0 <= slot < self.capacity:
            return False
        return self._values[slot] is not UNWRITTEN

    def peek_slot(self, slot: int) -> Any:
        """Value at *slot*, or :data:`UNWRITTEN` (non-raising read).

        Single-lookup combination of :meth:`is_written` +
        :meth:`read_slot` for hot enumeration loops.
        """
        return self._values[slot]

    def replace_slot(self, slot: int, expected: Any, value: Any) -> bool:
        """CAS-refine a *written* slot in place (lazy stamping only).

        The one sanctioned in-place mutation of a written cell: swapping
        a resolved transaction marker for its commit time so the
        transaction-manager entry becomes droppable. Returns False when
        the slot does not currently hold *expected* (including when it
        was never written).
        """
        with self._lock:
            if self._values[slot] == expected:
                self._values[slot] = value
                self._numpy_cache = None
                return True
            return False

    def iter_values(self) -> Iterator[Any]:
        """Yield the written prefix of the page, in slot order."""
        for value in self._values:
            if value is UNWRITTEN:
                break
            yield value

    def values_list(self) -> list[Any]:
        """The written prefix as one list slice (merge copy phase).

        Equivalent to ``list(iter_values())``: a single C-level slice
        plus a C-level membership scan instead of a generator yield per
        value. Pages whose written slots do not form a prefix (an
        in-flight writer mid-page) truncate at the first hole exactly
        like :meth:`iter_values`, so a racing copy can never smuggle
        the UNWRITTEN sentinel out as a value.
        """
        prefix = self._values[:self._num_written]
        if UNWRITTEN in prefix:  # non-prefix writes: truncate like iter
            return list(self.iter_values())
        return prefix

    @property
    def num_records(self) -> int:
        """Number of written slots."""
        return self._num_written

    @property
    def has_capacity(self) -> bool:
        """True when at least one slot is free."""
        return self._num_written < self.capacity

    @property
    def utilization(self) -> float:
        """Fraction of slots written (space-utilisation metric, §4.4)."""
        return self._num_written / self.capacity

    @property
    def byte_size(self) -> int:
        """Bytes of fixed-width buffer storage (0: object-list layout).

        Feeds the ``storage.page_bytes`` gauge; only byte-buffer pages
        contribute, so the gauge measures exactly the storage the
        zero-copy/zero-translation paths operate on.
        """
        return 0

    # -- analytics fast path ----------------------------------------------

    #: Cached negative verdict: the page holds values no int64 view can
    #: represent (e.g. strings). Distinct from None ("not computed").
    _DECLINED = ("declined",)

    def _numpy_state(self):
        """Compute-once ``(array, valid_mask, all_valid, total, nulls)``.

        ``valid_mask`` is False exactly where the slot holds the special
        null ∅ (so one deleted slot no longer disqualifies the page);
        ``total`` is the sum over non-∅ slots and ``nulls`` their slot
        positions, both amortised here so scans need no per-call NumPy
        reductions. The verdict — positive or negative — is cached
        because the page is frozen and can never change again.
        """
        state = self._numpy_cache
        if state is not None:
            return None if state is Page._DECLINED else state
        prefix = self._values[:self._num_written]
        nulls: list[int] = []
        for slot, value in enumerate(prefix):
            if type(value) is not int:
                if not is_null(value):
                    with self._lock:
                        if self._numpy_cache is None:
                            self._numpy_cache = Page._DECLINED
                    return None
                nulls.append(slot)
        valid = np.ones(len(prefix), dtype=bool)
        if nulls:
            array = np.asarray(
                [0 if is_null(value) else value for value in prefix],
                dtype=np.int64)
            valid[nulls] = False
        else:
            array = np.asarray(prefix, dtype=np.int64)
        state = (array, valid, not nulls, int(array.sum()), tuple(nulls))
        with self._lock:
            if self._numpy_cache is None:
                self._numpy_cache = state
            state = self._numpy_cache
        return None if state is Page._DECLINED else state

    def as_numpy(self) -> np.ndarray | None:
        """Return a cached int64 view of a frozen all-int page.

        Returns None when the page is mutable or holds any non-integer
        value (including ∅ from deletions); callers then fall back to
        :meth:`as_numpy_masked` or the Python read path. This is the
        read-optimised representation that gives columnar scans their
        bandwidth advantage (Table 8).
        """
        if not self._frozen:
            return None
        state = self._numpy_state()
        if state is None or not state[2]:
            return None
        return state[0]

    def as_numpy_masked(self) -> tuple[np.ndarray, np.ndarray] | None:
        """Return a cached ``(values, valid_mask)`` int64 view.

        Like :meth:`as_numpy` but ∅ slots are tolerated: they carry 0 in
        ``values`` and False in ``valid_mask``, so a frozen page with a
        few deleted records still serves the vectorised scan plane.
        Returns None when the page is mutable or holds a value that is
        neither int nor ∅ — both verdicts are cached on frozen pages
        (frozen contents can never change), so repeated scans pay the
        prefix inspection once instead of on every call.
        """
        if not self._frozen:
            return None
        state = self._numpy_state()
        if state is None:
            return None
        return state[0], state[1]

    def masked_total(self) -> tuple[int, tuple[int, ...]] | None:
        """Cached ``(sum of non-∅ slots, ∅ slot positions)``.

        The unfiltered-SUM scan consumes pages through this instead of
        arrays: the reduction ran once at view-build time, so the scan
        itself makes **no** NumPy calls — which matters under write
        contention, where every NumPy call is a GIL round-trip the
        writer threads can convoy on. None under the same conditions as
        :meth:`as_numpy_masked`.
        """
        if not self._frozen:
            return None
        state = self._numpy_state()
        if state is None:
            return None
        return state[3], state[4]

    # -- lineage -----------------------------------------------------------

    def set_lineage(self, tps_rid: int, merge_count: int) -> None:
        """Stamp in-page lineage after a merge (Section 4.2)."""
        self.tps_rid = tps_rid
        self.merge_count = merge_count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return ("Page(id=%d, kind=%s, col=%r, %d/%d slots, tps=%d)"
                % (self.page_id, self.kind.value, self.column,
                   self._num_written, self.capacity, self.tps_rid))


#: Internal miss marker for sidecar lookups (∅ and ints are real values).
_MISSING = object()


class BytesPage(Page):
    """A :class:`Page` backed by a fixed-width ``array('q')`` buffer.

    Storage layout (all allocated once, at construction, so buffer
    views stay valid for the page's lifetime):

    * ``_buf`` — one signed 64-bit cell per slot (zero-initialised);
    * ``_written`` — byte map, one byte per slot: slot has been written
      (write-once check). A byte per slot rather than a bit so the
      write path is a plain indexed store with no read-modify-write of
      a byte shared between eight slots;
    * ``_nullbits`` — bitmap: slot holds the special null ∅ (its buffer
      cell stays 0, so unmasked buffer sums are already ∅-correct);
    * ``_sidecar`` — lazy ``{slot: object}`` escape hatch for values no
      int64 cell can hold (strings, wide ints); their buffer cells also
      stay 0.

    The interface is exactly :class:`Page`'s — every call site (tail
    appends, chain walks, merge, serialization, the exec planes' slice
    readers) works by duck typing — but the hot paths compile down to
    C-level stores/loads, :meth:`as_numpy` / :meth:`as_numpy_masked`
    are zero-copy ``np.frombuffer`` views of the live buffer, and
    :meth:`export_dense` hands serialization the raw bytes verbatim.
    """

    __slots__ = ("_buf", "_written", "_nullbits", "_sidecar", "_clean")

    def __init__(self, page_id: int, kind: PageKind, capacity: int,
                 column: int | None = None) -> None:
        if capacity <= 0:
            raise ValueError("page capacity must be positive")
        self.page_id = page_id
        self.kind = kind
        self.capacity = capacity
        self.column = column
        #: The inherited object-list storage is unused; keep the slot
        #: bound (and empty) so a stray access fails loudly.
        self._values = ()
        self._buf = array("q", bytes(8 * capacity))
        self._written = bytearray(capacity)
        self._nullbits = bytearray((capacity + 7) >> 3)
        self._sidecar: dict[int, Any] | None = None
        #: Fast-path flag: True while the page holds no ∅ and no
        #: sidecar value, so a written slot's value IS its buffer cell
        #: (one compare instead of two bitmap probes per read). Goes
        #: False on the first spill and never back — conservative.
        self._clean = True
        self._num_written = 0
        self._frozen = False
        self.tps_rid: int = NULL_RID
        self.merge_count: int = 0
        self._numpy_cache = None
        self._lock = make_lock("page")
        self.deallocated = False

    # -- storage helpers ---------------------------------------------------

    def _spill(self, slot: int, value: Any) -> None:
        # Caller holds self._lock. The buffer cell stays 0: ∅ slots
        # contribute nothing to buffer sums, sidecar slots are patched
        # on read.
        self._clean = False
        if is_null(value):
            self._nullbits[slot >> 3] |= 1 << (slot & 7)
            return
        side = self._sidecar
        if side is None:
            side = self._sidecar = {}
        side[slot] = value

    def _mark_prefix_written(self, count: int) -> None:
        # Caller holds self._lock.
        self._written[:count] = b"\x01" * count

    def _prefix_length(self) -> int:
        """Length of the written prefix (truncates at the first hole)."""
        count = self._num_written
        written = self._written
        if written[:count] == b"\x01" * count:
            return count
        length = 0
        for flag in written:
            if not flag:
                break
            length += 1
        return length

    def _null_slots(self, limit: int) -> list[int]:
        """Slots below *limit* holding ∅, ascending."""
        out: list[int] = []
        for byte_index, byte in enumerate(self._nullbits):
            if not byte:
                continue
            base = byte_index << 3
            if base >= limit:
                break
            for bit in range(8):
                if byte & (1 << bit) and base + bit < limit:
                    out.append(base + bit)
        return out

    # -- writes ----------------------------------------------------------

    def write_slot(self, slot: int, value: Any) -> None:
        """Write *value* into *slot* exactly once.

        The body of :meth:`write_slot_fast` is inlined after the frozen
        and bounds checks rather than delegated — base-range inserts go
        through here, and the extra Python frame of a delegating call
        costs as much as the store itself.
        """
        if self._frozen:
            raise PageImmutableError(
                "page %d is frozen (%s)" % (self.page_id, self.kind.value))
        if not 0 <= slot < self.capacity:
            raise PageFullError(
                "slot %d out of range for capacity %d"
                % (slot, self.capacity))
        lock = self._lock
        lock.acquire()
        try:
            written = self._written
            if written[slot]:
                raise PageImmutableError(
                    "slot %d of page %d already written (write-once)"
                    % (slot, self.page_id))
            if type(value) is int:
                try:
                    self._buf[slot] = value
                except OverflowError:
                    self._spill(slot, value)
            else:
                self._spill(slot, value)
            written[slot] = 1
            self._num_written += 1
        finally:
            lock.release()

    def write_slot_fast(self, slot: int, value: Any) -> None:
        """Write-once write of a slot the caller exclusively owns.

        Same contract as :meth:`Page.write_slot_fast`; the store is a
        C-level ``array('q')`` item assignment plus one byte-map store
        (no bit math, no read-modify-write). The lock is taken with
        explicit acquire/release: on this hottest of paths the ``with``
        statement's context-manager dispatch is measurable (~30% of
        the whole call).
        """
        lock = self._lock
        lock.acquire()
        try:
            written = self._written
            if written[slot]:
                raise PageImmutableError(
                    "slot %d of page %d already written (write-once)"
                    % (slot, self.page_id))
            if type(value) is int:
                try:
                    self._buf[slot] = value
                except OverflowError:
                    self._spill(slot, value)
            else:
                self._spill(slot, value)
            written[slot] = 1
            self._num_written += 1
        finally:
            lock.release()

    def write_slot_pair_fast(self, slot1: int, value1: Any,
                             slot2: int, value2: Any) -> None:
        """Two exclusively-owned write-once slots under one lock hold."""
        lock = self._lock
        lock.acquire()
        try:
            written = self._written
            if written[slot1] or written[slot2]:
                raise PageImmutableError(
                    "slot %d/%d of page %d already written (write-once)"
                    % (slot1, slot2, self.page_id))
            buf = self._buf
            if type(value1) is int:
                try:
                    buf[slot1] = value1
                except OverflowError:
                    self._spill(slot1, value1)
            else:
                self._spill(slot1, value1)
            if type(value2) is int:
                try:
                    buf[slot2] = value2
                except OverflowError:
                    self._spill(slot2, value2)
            else:
                self._spill(slot2, value2)
            written[slot1] = 1
            written[slot2] = 1
            self._num_written += 2
        finally:
            lock.release()

    def fill(self, values: Sequence[Any]) -> None:
        """Bulk-write a fresh page (merge fast path); then freeze it."""
        if self._num_written:
            raise PageImmutableError(
                "fill() requires an empty page; %d slots already written"
                % self._num_written)
        if len(values) > self.capacity:
            raise PageFullError(
                "%d values exceed capacity %d" % (len(values), self.capacity))
        with self._lock:
            try:
                # All-int bulk path: one C-level buffer splice.
                # ``array('q')`` would silently coerce bool (an int
                # subclass) to 0/1, so anything but exact ints takes
                # the slot-wise path, where bools spill to the sidecar
                # and read back unchanged — both layouts agree.
                if any(type(v) is not int for v in values):
                    raise TypeError
                self._buf[:len(values)] = array("q", values)
            except (TypeError, OverflowError):
                buf = self._buf
                for slot, value in enumerate(values):
                    if type(value) is int:
                        try:
                            buf[slot] = value
                            continue
                        except OverflowError:
                            pass
                    self._spill(slot, value)
            self._mark_prefix_written(len(values))
            self._num_written = len(values)
        self.freeze()

    def replace_slot(self, slot: int, expected: Any, value: Any) -> bool:
        """CAS-refine a written slot (see :meth:`Page.replace_slot`).

        Readers peek without the page lock (the chain-walk hot paths),
        so the swap is ordered to be reader-atomic — an unlocked
        :meth:`peek_slot` observes either the old value or the new one,
        never a transient. A fitting int stores straight over the cell
        (one atomic item assignment, no preceding zero store — a
        transient 0 here would read as "committed at time 0" during
        lazy Start Time stamping); spill targets install the new ∅ bit
        / sidecar entry *before* the old representation is retired, and
        the cell is zeroed last so buffer sums stay ∅-correct.
        """
        index = slot >> 3
        mask = 1 << (slot & 7)
        with self._lock:
            if not self._written[slot]:
                return False
            if self._nullbits[index] & mask:
                current: Any = NULL
            else:
                side = self._sidecar
                current = _MISSING if side is None \
                    else side.get(slot, _MISSING)
                if current is _MISSING:
                    current = self._buf[slot]
            if not (current == expected
                    or (is_null(current) and is_null(expected))):
                return False
            if type(value) is int:
                try:
                    self._buf[slot] = value
                except OverflowError:
                    pass
                else:
                    if self._sidecar is not None:
                        self._sidecar.pop(slot, None)
                    self._nullbits[index] &= ~mask & 0xFF
                    self._numpy_cache = None
                    return True
            self._spill(slot, value)
            if is_null(value):
                if self._sidecar is not None:
                    self._sidecar.pop(slot, None)
            else:
                self._nullbits[index] &= ~mask & 0xFF
            self._buf[slot] = 0
            self._numpy_cache = None
            return True

    # -- reads -----------------------------------------------------------

    def read_slot(self, slot: int) -> Any:
        """Return the value at *slot* (may be the special null ∅)."""
        if not 0 <= slot < self.capacity:
            raise PageFullError(
                "slot %d out of range for capacity %d"
                % (slot, self.capacity))
        value = self.peek_slot(slot)
        if value is UNWRITTEN:
            raise PageImmutableError(
                "slot %d of page %d was never written"
                % (slot, self.page_id))
        return value

    def is_written(self, slot: int) -> bool:
        """True when *slot* holds a value."""
        if not 0 <= slot < self.capacity:
            return False
        return bool(self._written[slot])

    def peek_slot(self, slot: int) -> Any:
        """Value at *slot*, or :data:`UNWRITTEN` (non-raising read).

        The clean-page fast path (no ∅, no sidecar — the overwhelmingly
        common case) is one byte-map probe plus one C-level buffer
        load. The flag is re-checked after the load: a concurrent
        :meth:`replace_slot` spilling a clean page's cell flips
        ``_clean`` *before* touching the bitmaps and zeroes the cell
        last, so a buffer value read while the flag still holds is
        guaranteed pre-transition — otherwise the slow path below
        re-resolves through the bitmaps and sidecar.
        """
        if self._clean:
            if self._written[slot]:
                value = self._buf[slot]
                if self._clean:
                    return value
            else:
                return UNWRITTEN
        if not self._written[slot]:
            return UNWRITTEN
        if self._nullbits[slot >> 3] & (1 << (slot & 7)):
            return NULL
        side = self._sidecar
        if side is not None:
            value = side.get(slot, _MISSING)
            if value is not _MISSING:
                return value
        return self._buf[slot]

    def iter_values(self) -> Iterator[Any]:
        """Yield the written prefix of the page, in slot order."""
        for slot in range(self._prefix_length()):
            yield self.peek_slot(slot)

    def values_list(self) -> list[Any]:
        """The written prefix as one list (merge fallback copy phase)."""
        length = self._prefix_length()
        if not length:
            return []
        values = self._buf[:length].tolist()
        for slot in self._null_slots(length):
            values[slot] = NULL
        side = self._sidecar
        if side:
            for slot, value in side.items():
                if slot < length:
                    values[slot] = value
        return values

    @property
    def byte_size(self) -> int:
        """Bytes of fixed-width buffer + write-map/null-bitmap storage."""
        return 8 * self.capacity + len(self._written) + len(self._nullbits)

    # -- raw-buffer transport ---------------------------------------------

    @property
    def buffer(self) -> memoryview:
        """Read-only byte view of the whole slot buffer.

        ``bytes(page.buffer[:8 * page.num_records])`` is exactly the
        disk image serialization writes (zero translation).
        """
        return memoryview(self._buf).cast("B").toreadonly()

    def export_dense(
            self) -> tuple[int, memoryview, bytes, dict[int, Any]] | None:
        """``(num_records, raw bytes, null bitmap, sidecar)`` or None.

        The raw-buffer transport used by serialization and the merge
        copy phase: the memoryview aliases the live buffer (no copy) and
        covers exactly the written prefix. Returns None when the written
        slots do not form a dense prefix (an in-flight writer mid-page
        or a crash-truncated tail) — callers then fall back to the
        generic slot-by-slot formats.
        """
        length = self._prefix_length()
        if length != self._num_written:
            return None
        raw = memoryview(self._buf).cast("B").toreadonly()[:8 * length]
        null_bitmap = bytes(self._nullbits[:(length + 7) >> 3])
        side = self._sidecar
        sidecar = {} if not side else {
            slot: value for slot, value in side.items() if slot < length}
        return length, raw, null_bitmap, sidecar

    def install_dense(self, raw: bytes | memoryview, num_records: int,
                      null_bitmap: bytes | bytearray,
                      sidecar: dict[int, Any] | None) -> None:
        """Install a dense prefix from raw-buffer transport parts.

        Inverse of :meth:`export_dense`, used by deserialization and the
        merge install phase on a freshly constructed page: the raw bytes
        splice straight into the buffer (one C-level copy), the null
        bitmap overlays verbatim, and the sidecar (if any) is adopted.
        """
        if self._num_written:
            raise PageImmutableError(
                "install_dense() requires an empty page; %d slots written"
                % self._num_written)
        if num_records > self.capacity:
            raise PageFullError(
                "%d records exceed capacity %d"
                % (num_records, self.capacity))
        with self._lock:
            memoryview(self._buf).cast("B")[:len(raw)] = raw
            self._nullbits[:len(null_bitmap)] = null_bitmap
            if sidecar:
                self._sidecar = dict(sidecar)
            if sidecar or any(null_bitmap):
                self._clean = False
            self._mark_prefix_written(num_records)
            self._num_written = num_records

    # -- analytics fast path ----------------------------------------------

    def _numpy_state(self):
        """Compute-once state tuple; the array is a zero-copy view.

        Same contract as :meth:`Page._numpy_state`, but the array is a
        read-only ``np.frombuffer`` view of the live ``array('q')``
        buffer (no copy — the buffer is allocated once and the page is
        frozen, so the view can never go stale) and ``total`` is one
        buffer-wide NumPy reduction: ∅ slots carry 0 in the buffer, so
        no masking pass is needed.
        """
        state = self._numpy_cache
        if state is not None:
            return None if state is Page._DECLINED else state
        length = self._prefix_length()
        side = self._sidecar
        if side and any(slot < length for slot in side):
            with self._lock:
                if self._numpy_cache is None:
                    self._numpy_cache = Page._DECLINED
            return None
        view = np.frombuffer(self._buf, dtype=np.int64, count=length)
        view.flags.writeable = False
        nulls = tuple(self._null_slots(length))
        valid = np.ones(length, dtype=bool)
        if nulls:
            valid[list(nulls)] = False
        state = (view, valid, not nulls, int(view.sum()), nulls)
        with self._lock:
            if self._numpy_cache is None:
                self._numpy_cache = state
            state = self._numpy_cache
        return None if state is Page._DECLINED else state


class RowPage:
    """A fixed-capacity page holding full physical rows as tuples.

    Used by the ``Layout.ROW`` variant of L-Store that Tables 8 and 9
    compare against the columnar default. The interface mirrors
    :class:`Page` but every slot stores one tuple spanning all physical
    columns.
    """

    __slots__ = ("page_id", "kind", "capacity", "width", "_rows",
                 "_num_written", "_frozen", "tps_rid", "merge_count",
                 "_lock", "deallocated", "column")

    def __init__(self, page_id: int, kind: PageKind, capacity: int,
                 width: int) -> None:
        if capacity <= 0:
            raise ValueError("page capacity must be positive")
        if width <= 0:
            raise ValueError("row width must be positive")
        self.page_id = page_id
        self.kind = kind
        self.capacity = capacity
        self.width = width
        self.column: int | None = None
        self._rows: list[tuple | None] = [None] * capacity
        self._num_written = 0
        self._frozen = False
        self.tps_rid: int = NULL_RID
        self.merge_count: int = 0
        self._lock = make_lock("page")
        self.deallocated = False

    def write_row(self, slot: int, row: Sequence[Any]) -> None:
        """Write the full physical *row* into *slot* exactly once."""
        if self._frozen:
            raise PageImmutableError("row page %d is frozen" % self.page_id)
        if len(row) != self.width:
            raise PageImmutableError(
                "row width %d != page width %d" % (len(row), self.width))
        if not 0 <= slot < self.capacity:
            raise PageFullError("slot %d out of range" % slot)
        with self._lock:
            if self._rows[slot] is not None:
                raise PageImmutableError(
                    "slot %d of row page %d already written"
                    % (slot, self.page_id))
            self._rows[slot] = tuple(row)
            self._num_written += 1

    def read_row(self, slot: int) -> tuple:
        """Return the tuple at *slot*."""
        row = self._rows[slot]
        if row is None:
            raise PageImmutableError(
                "slot %d of row page %d was never written"
                % (slot, self.page_id))
        return row

    def read_cell(self, slot: int, column: int) -> Any:
        """Return one cell of the row at *slot*."""
        return self.read_row(slot)[column]

    def read_rows(self, first_slot: int = 0,
                  last_slot: int | None = None) -> list[tuple | None]:
        """Batched slice of rows in ``[first_slot, last_slot)``.

        One list copy instead of a ``read_row`` call per slot — the
        row-layout analogue of the columnar page's NumPy view. Unwritten
        slots appear as None; callers skip them (a written row is an
        immutable tuple, so sharing the references is safe).
        """
        if last_slot is None:
            last_slot = self.capacity
        return self._rows[first_slot:last_slot]

    def is_written(self, slot: int) -> bool:
        """True when *slot* holds a row."""
        return 0 <= slot < self.capacity and self._rows[slot] is not None

    def refine_cell(self, slot: int, column: int, expected: Any,
                    value: Any) -> bool:
        """CAS-refine one cell of a written row (lazy stamping only).

        The row-layout analogue of the columnar in-place Start Time
        refinement: swap a resolved transaction marker for its commit
        time so the transaction-manager entry becomes droppable. Rows
        are immutable tuples shared with readers, so the refined row
        replaces the slot atomically — a reader holds either the old
        tuple (its marker still resolves through the manager until the
        GC floor passes) or the new one; both read identically.
        """
        with self._lock:
            row = self._rows[slot]
            if row is None or row[column] != expected:
                return False
            self._rows[slot] = row[:column] + (value,) + row[column + 1:]
            return True

    def freeze(self) -> None:
        """Mark the page read-only."""
        self._frozen = True

    @property
    def frozen(self) -> bool:
        """True when the page accepts no further writes."""
        return self._frozen

    @property
    def num_records(self) -> int:
        """Number of written slots."""
        return self._num_written

    @property
    def has_capacity(self) -> bool:
        """True when at least one slot is free."""
        return self._num_written < self.capacity

    def set_lineage(self, tps_rid: int, merge_count: int) -> None:
        """Stamp in-page lineage after a merge."""
        self.tps_rid = tps_rid
        self.merge_count = merge_count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return ("RowPage(id=%d, kind=%s, %d/%d slots)"
                % (self.page_id, self.kind.value,
                   self._num_written, self.capacity))


def page_values_equal(a: Any, b: Any) -> bool:
    """Value equality that treats the special null ∅ as equal to itself."""
    if is_null(a) and is_null(b):
        return True
    return a == b
