"""Contention-free, relaxed merge (Section 4.1, Algorithm 1).

The merge consolidates committed tail records into fresh read-only
merged pages entirely in the background: writers keep appending tails
and CAS-ing indirections, readers keep reading whatever chain the page
directory pointed to when they started, and the only foreground action
is the pointer swap in the page directory (step 4). Outdated pages go
to the epoch manager (step 5).

Two merge flavours exist, matching the paper:

* the **insert merge** ("Merging Table-level Tail-pages") materialises
  the read-only base pages of a full insert sub-range from its
  table-level tails — a trivial aligned consolidation;
* the **regular merge** (Algorithm 1) left-outer-joins a consecutive
  prefix of committed tail records onto the current base pages, tracking
  per-column/per-record latest values in reverse order, and stamps the
  new pages' in-page lineage (TPS).
"""

from __future__ import annotations

import threading
import warnings
from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Sequence

from ..errors import LineageError
from ..analysis.locks import make_lock
from ..fault import hit as fault_hit
from ..obs.registry import CounterStat, MetricsRegistry
from ..obs.trace import TRACE, span
from .compression import maybe_compress_page
from .encoding import SchemaEncoding
from .page import BytesPage, Page, RowPage
from .schema import (BASE_RID_COLUMN, INDIRECTION_COLUMN, LAST_UPDATED_COLUMN,
                     SCHEMA_ENCODING_COLUMN, START_TIME_COLUMN)
from .table import ROW_CHAIN_COLUMN, Table, UpdateRange, tps_applied
from .types import (NULL, NULL_RID, Layout, PageKind, TransactionState,
                    is_null)


@dataclass(frozen=True)
class MergeTask:
    """One unit of work in the merge queue."""

    table: Table
    range_id: int
    kind: str  # "insert" or "update"


@dataclass
class MergeResult:
    """Outcome of processing one merge task."""

    performed: bool
    retry: bool = False
    records_consolidated: int = 0
    pages_created: int = 0


class MergeEngine:
    """The asynchronous merge thread of Figure 5.

    Writer threads enqueue candidate ranges (through the table's
    ``merge_notifier``); the engine consumes them either from a single
    background thread (``start``) or synchronously via
    :meth:`run_pending` (deterministic mode used by tests). A processing
    lock serialises merges, matching the paper's single merge thread
    that "was able to cope with tens of concurrent writer threads".
    """

    def __init__(self, *, poll_interval: float = 0.001,
                 batch_ranges: int = 1,
                 quarantine_after: int = 3,
                 metrics: MetricsRegistry | None = None) -> None:
        self._queue: deque[MergeTask] = deque()
        self._queued: set[tuple[int, int, str]] = set()
        self._lock = make_lock("merge.queue")
        self._wakeup = threading.Event()
        self._thread: threading.Thread | None = None
        self._stop = False
        self._processing = make_lock("merge.processing")
        self._poll_interval = poll_interval
        #: Tasks drained per wakeup/batch: >1 amortises the queue and
        #: processing locks (and the disabled-trace span dispatch) over
        #: several ranges, so deep backlogs drain faster; 1 keeps the
        #: original task-at-a-time discipline.
        self._batch_ranges = max(1, batch_ranges)
        #: Supervised-service handle when started under a Supervisor.
        self._service: Any | None = None
        #: Crashes per task key; at *quarantine_after* the range is
        #: quarantined (stays un-merged on the row plane) so one bad
        #: range cannot keep killing the worker for everyone else.
        self._quarantine_after = max(1, quarantine_after)
        self._crash_counts: dict[tuple[int, int, str], int] = {}
        self._quarantined: dict[tuple[int, int, str], MergeTask] = {}
        #: Human-readable description of the last task crash.
        self.last_crash: str | None = None
        #: perf_counter mark of the last forward progress (a processed
        #: task, or an observed-empty queue) — the stall probe.
        self._progress_mark = perf_counter()
        if metrics is None:
            metrics = MetricsRegistry()
        self.metrics = metrics
        self._stat_merges = metrics.counter(
            "merge.ranges_merged", help="Regular (Algorithm 1) merges")
        self._stat_insert_merges = metrics.counter(
            "merge.insert_ranges_merged",
            help="Insert sub-ranges materialised into base pages")
        self._stat_records_consolidated = metrics.counter(
            "merge.records_consolidated",
            help="Tail records consolidated into merged pages")
        self._stat_retries = metrics.counter(
            "merge.retries", help="Merge tasks re-enqueued (not ready)")
        self._stat_batched_ranges = metrics.counter(
            "merge.batched_ranges",
            help="Merge tasks drained as part of a multi-task batch")
        self._stat_task_crashes = metrics.counter(
            "merge.task_crashes",
            help="Merge tasks that raised out of the worker")
        self._stat_stop_timeouts = metrics.counter(
            "merge.stop_timeouts",
            help="stop() joins that timed out with the thread alive")
        self._stat_quarantine_drops = metrics.counter(
            "merge.quarantine_drops",
            help="Merge notifications dropped for quarantined ranges")
        self._merge_seconds = metrics.histogram(
            "merge.duration_seconds", unit="seconds",
            help="Wall time of one performed merge task")
        metrics.gauge("merge.backlog", lambda: self.backlog,
                      help="Merge tasks currently queued")
        metrics.gauge("merge.quarantined_ranges",
                      lambda: len(self._quarantined),
                      help="Ranges quarantined after repeated task "
                           "crashes (served un-merged)")

    # -- statistics (registry-backed aliases) ------------------------------

    stat_merges = CounterStat("_stat_merges", "Regular merges performed.")
    stat_insert_merges = CounterStat(
        "_stat_insert_merges", "Insert merges performed.")
    stat_records_consolidated = CounterStat(
        "_stat_records_consolidated", "Tail records consolidated.")
    stat_retries = CounterStat("_stat_retries", "Tasks re-enqueued.")
    stat_batched_ranges = CounterStat(
        "_stat_batched_ranges", "Tasks drained in multi-task batches.")
    stat_task_crashes = CounterStat(
        "_stat_task_crashes", "Tasks that raised out of the worker.")
    stat_stop_timeouts = CounterStat(
        "_stat_stop_timeouts", "stop() join timeouts.")
    stat_quarantine_drops = CounterStat(
        "_stat_quarantine_drops",
        "Notifications dropped for quarantined ranges.")

    # -- queueing -----------------------------------------------------------

    def notifier(self, table: Table, range_id: int, kind: str) -> None:
        """Table callback: enqueue (table, range, kind) once.

        Quarantined tasks are dropped (counted): their range stays
        un-merged on the always-correct row plane instead of crashing
        the worker again.
        """
        key = (id(table), range_id, kind)
        with self._lock:
            if key in self._quarantined:
                dropped = True
            elif key in self._queued:
                return
            else:
                dropped = False
                self._queued.add(key)
                self._queue.append(MergeTask(table, range_id, kind))
        if dropped:
            self._stat_quarantine_drops.add()
            return
        self._wakeup.set()

    def attach(self, table: Table) -> None:
        """Install this engine as *table*'s merge notifier."""
        table.merge_notifier = self.notifier

    @property
    def queue_length(self) -> int:
        """Tasks currently waiting."""
        with self._lock:
            return len(self._queue)

    @property
    def backlog(self) -> int:
        """Lock-free backlog probe for admission control and gauges.

        ``len(deque)`` is atomic under the GIL, so writer threads read
        the watermark level without touching the merge queue lock.
        """
        return len(self._queue)

    def kick(self) -> None:
        """Wake the background thread (throttled writers call this)."""
        self._wakeup.set()

    # -- crash accounting and quarantine ------------------------------------

    @property
    def quarantined_count(self) -> int:
        """Ranges currently quarantined."""
        return len(self._quarantined)

    def quarantined_tasks(self) -> tuple[MergeTask, ...]:
        """The quarantined tasks (for operators and tests)."""
        with self._lock:
            return tuple(self._quarantined.values())

    def unquarantine(self, table: Table, range_id: int,
                     kind: str) -> bool:
        """Lift a quarantine and re-enqueue the task; True if found."""
        key = (id(table), range_id, kind)
        with self._lock:
            task = self._quarantined.pop(key, None)
            if task is None:
                return False
            self._crash_counts.pop(key, None)
        self.notifier(task.table, task.range_id, task.kind)
        return True

    def _note_crash(self, task: MergeTask, exc: Exception) -> None:
        """Record one task crash; quarantine or re-enqueue the task.

        Called with every hot lock released (the processing-lock hold
        has already unwound). Until the quarantine threshold the task
        re-enqueues so a restarted worker retries it; at the threshold
        the range is quarantined and further notifications drop.
        """
        key = (id(task.table), task.range_id, task.kind)
        with self._lock:
            count = self._crash_counts.get(key, 0) + 1
            self._crash_counts[key] = count
            quarantine = count >= self._quarantine_after
            if quarantine:
                self._quarantined[key] = task
        self.last_crash = (
            "%s merge of range %d in table %r crashed (%d/%d): %s: %s"
            % (task.kind, task.range_id, task.table.schema.name, count,
               self._quarantine_after, type(exc).__name__, exc))
        self._stat_task_crashes.add()
        if not quarantine:
            self.notifier(task.table, task.range_id, task.kind)

    def seconds_stalled(self) -> float:
        """Seconds the non-empty backlog has seen no forward progress.

        0.0 while the queue is empty; the health probe compares this
        against ``EngineConfig.merge_stall_seconds``.
        """
        if not self._queue:
            return 0.0
        return perf_counter() - self._progress_mark

    def _dequeue(self) -> MergeTask | None:
        with self._lock:
            if not self._queue:
                return None
            task = self._queue.popleft()
            self._queued.discard((id(task.table), task.range_id, task.kind))
            return task

    def _dequeue_batch(self, max_tasks: int) -> list[MergeTask]:
        """Pop up to *max_tasks* tasks under one queue-lock hold."""
        with self._lock:
            queue = self._queue
            count = min(len(queue), max(1, max_tasks))
            tasks = [queue.popleft() for _ in range(count)]
            discard = self._queued.discard
            for task in tasks:
                discard((id(task.table), task.range_id, task.kind))
        return tasks

    # -- synchronous draining -------------------------------------------------

    def run_pending(self, max_tasks: int | None = None) -> int:
        """Process queued tasks inline; return tasks completed.

        Tasks that are not ready (e.g. an insert range with in-flight
        transactions) are re-enqueued once and not retried within this
        call, so the method always terminates. With
        ``merge_batch_ranges > 1`` tasks drain in batches that share
        one queue-lock and one processing-lock acquisition.
        """
        completed = 0
        budget = self.queue_length if max_tasks is None else max_tasks
        if self._batch_ranges <= 1:
            for _ in range(budget):
                task = self._dequeue()
                if task is None:
                    break
                result = self._process_guarded(task)
                self._progress_mark = perf_counter()
                task.table.epoch_manager.reclaim()
                if result.retry:
                    self.notifier(task.table, task.range_id, task.kind)
                    self._stat_retries.add()
                elif result.performed:
                    completed += 1
            return completed
        while budget > 0:
            tasks = self._dequeue_batch(min(budget, self._batch_ranges))
            if not tasks:
                break
            budget -= len(tasks)
            done, _ = self._drain_batch(tasks)
            completed += done
        return completed

    def _drain_batch(self, tasks: list[MergeTask]) -> tuple[int, bool]:
        """Process *tasks* under one processing-lock hold.

        Returns ``(completed, any_retried)``. Per-task ``merge.range``
        spans are emitted only while tracing is actually collecting —
        the disabled-trace span dispatch is one of the per-task costs
        batching amortises away.
        """
        if len(tasks) > 1:
            self._stat_batched_ranges.add(len(tasks))
        completed = 0
        retried: list[MergeTask] = []
        cursor = 0
        try:
            with self._processing:
                while cursor < len(tasks):
                    task = tasks[cursor]
                    cursor += 1
                    if TRACE.enabled:
                        with span("merge.range",
                                  table=task.table.schema.name,
                                  range_id=task.range_id, kind=task.kind):
                            result = self._process_inner(task)
                    else:
                        result = self._process_inner(task)
                    if result.retry:
                        retried.append(task)
                        self._stat_retries.add()
                    elif result.performed:
                        completed += 1
        except Exception as exc:
            # The with-block unwound: the processing lock is released.
            # Hand untouched tasks back to the queue, account the
            # crash (quarantine or re-enqueue the crashed task), then
            # re-raise so a supervised worker thread dies and restarts.
            for leftover in tasks[cursor:]:
                self.notifier(leftover.table, leftover.range_id,
                              leftover.kind)
            for task in retried:
                self.notifier(task.table, task.range_id, task.kind)
            for table in {id(t.table): t.table for t in tasks}.values():
                table.epoch_manager.reclaim()
            self._note_crash(tasks[cursor - 1], exc)
            raise
        # Re-enqueue retries and reclaim retired pages only after the
        # processing lock is released — the notifier is pluggable
        # (table.merge_notifier is wired here) and may touch merge
        # state, and epoch on_reclaim hooks must never fire under a hot
        # lock; the single-task path orders both after :meth:`_process`
        # returns.
        self._progress_mark = perf_counter()
        for table in {id(t.table): t.table for t in tasks}.values():
            table.epoch_manager.reclaim()
        for task in retried:
            self.notifier(task.table, task.range_id, task.kind)
        return completed, bool(retried)

    # -- background thread ---------------------------------------------------

    def start(self, supervisor: Any | None = None) -> None:
        """Start the background merge thread.

        With a :class:`~repro.health.supervisor.Supervisor`, the run
        loop executes under its restart policy: a task crash kills the
        worker (after :meth:`_note_crash` accounting), the supervisor
        backs off and relaunches it, and the quarantine keeps one bad
        range from crashing the worker forever. Without one, the bare
        thread behaves as before — except crashes are now at least
        recorded instead of vanishing.
        """
        if self._thread is not None or self._service is not None:
            return
        self._stop = False
        if supervisor is not None:
            self._service = supervisor.launch(
                "merge", self._run, stop_hook=self._signal_stop,
                thread_name="lstore-merge")
            return
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="lstore-merge")
        self._thread.start()

    def _signal_stop(self) -> None:
        self._stop = True
        self._wakeup.set()

    @property
    def alive(self) -> bool:
        """True while a background worker (bare or supervised) runs."""
        if self._service is not None:
            return bool(self._service.alive)
        thread = self._thread
        return thread is not None and thread.is_alive()

    def stop(self, drain: bool = True) -> None:
        """Stop the background thread (optionally draining the queue).

        A join timeout is detected and counted (``merge.stop_timeouts``)
        and the thread handle is **kept** while the thread is alive, so
        a later stop() can retry and ``alive`` stays truthful.
        """
        if self._thread is None and self._service is None:
            return
        if drain:
            self.run_pending()
        self._stop = True
        self._wakeup.set()
        if self._service is not None:
            if self._service.stop(timeout=5.0):
                self._service = None
            else:
                self._stat_stop_timeouts.add()
                warnings.warn("merge worker did not stop within 5s; "
                              "keeping the service handle", RuntimeWarning)
            return
        thread = self._thread
        thread.join(timeout=5.0)
        if thread.is_alive():
            self._stat_stop_timeouts.add()
            warnings.warn("merge thread did not stop within 5s; "
                          "keeping the thread handle", RuntimeWarning)
        else:
            self._thread = None

    def _run(self) -> None:
        while not self._stop:
            if self._batch_ranges > 1:
                tasks = self._dequeue_batch(self._batch_ranges)
                if not tasks:
                    self._progress_mark = perf_counter()
                    self._wakeup.wait(self._poll_interval)
                    self._wakeup.clear()
                    continue
                _, retried = self._drain_batch(tasks)
                if retried:
                    # Back off: a blocking transaction needs time.
                    self._wakeup.wait(self._poll_interval)
                    self._wakeup.clear()
                continue
            task = self._dequeue()
            if task is None:
                self._progress_mark = perf_counter()
                self._wakeup.wait(self._poll_interval)
                self._wakeup.clear()
                continue
            result = self._process_guarded(task)
            self._progress_mark = perf_counter()
            task.table.epoch_manager.reclaim()
            if result.retry:
                self.notifier(task.table, task.range_id, task.kind)
                # Back off: the blocking transaction needs time to finish.
                self._wakeup.wait(self._poll_interval)
                self._wakeup.clear()

    # -- processing ------------------------------------------------------------

    def _process_guarded(self, task: MergeTask) -> MergeResult:
        """:meth:`_process` plus crash accounting (locks released)."""
        try:
            return self._process(task)
        except Exception as exc:
            self._note_crash(task, exc)
            raise

    def _process(self, task: MergeTask) -> MergeResult:
        """Task-at-a-time processing (the ``merge_batch_ranges=1`` path)."""
        with self._processing, \
                span("merge.range", table=task.table.schema.name,
                     range_id=task.range_id, kind=task.kind):
            return self._process_inner(task)

    def _process_inner(self, task: MergeTask) -> MergeResult:
        # Caller holds self._processing.
        started = perf_counter() if self._merge_seconds.enabled else 0.0
        update_range = task.table.ranges.get(task.range_id)
        if update_range is None:
            return MergeResult(performed=False)
        if task.kind == "insert":
            result = merge_insert_range(task.table, update_range,
                                        reclaim=False)
            if result.performed:
                self._stat_insert_merges.add()
                self._stat_records_consolidated.add(
                    result.records_consolidated)
        else:
            if not update_range.merged:
                # "The base records must also fall outside the insert
                # range before becoming a candidate" — materialise
                # first.
                insert_result = merge_insert_range(task.table,
                                                   update_range,
                                                   reclaim=False)
                if not insert_result.performed:
                    return MergeResult(performed=False, retry=True)
                self._stat_insert_merges.add()
            result = merge_update_range(task.table, update_range,
                                        reclaim=False)
            if result.performed:
                self._stat_merges.add()
                self._stat_records_consolidated.add(
                    result.records_consolidated)
            update_range.merge_pending = False
        if result.performed and self._merge_seconds.enabled:
            self._merge_seconds.observe(perf_counter() - started)
        return result


# ---------------------------------------------------------------------------
# Insert merge (Section 3.2 / "Merging Table-level Tail-pages")
# ---------------------------------------------------------------------------

def merge_insert_range(table: Table,
                       update_range: UpdateRange, *,
                       reclaim: bool = True) -> MergeResult:
    """Materialise base pages for one insert sub-range.

    Requires every slot of the sub-range to be written and resolved
    (committed or aborted); returns ``retry`` otherwise. Aborted inserts
    become holes: all-∅ data cells plus a base tombstone.

    ``reclaim=False`` defers epoch reclamation to the caller (the merge
    engine holds its processing lock here; on_reclaim hooks must only
    fire once every hot lock is released).
    """
    with update_range.merge_lock:
        result = _merge_insert_range_locked(table, update_range)
    if reclaim and result.performed:
        table.epoch_manager.reclaim()
    return result


def _merge_insert_range_locked(table: Table,
                               update_range: UpdateRange) -> MergeResult:
    if update_range.merged:
        return MergeResult(performed=False)
    insert_range = update_range.insert_range
    segment = insert_range.segment
    size = update_range.size
    first = update_range.insert_offset(0)

    resolved_times: list[int] = []
    tombstones: set[int] = set()
    for offset in range(size):
        insert_offset = first + offset
        if not segment.record_written(insert_offset):
            return MergeResult(performed=False, retry=True)
        if segment.is_tombstone(insert_offset):
            tombstones.add(offset)
            resolved_times.append(0)
            continue
        resolved = table.resolve_cell(
            segment.record_cell(insert_offset, START_TIME_COLUMN))
        if not resolved.committed:
            if resolved.state is TransactionState.ABORTED:
                tombstones.add(offset)
                resolved_times.append(0)
                continue
            return MergeResult(performed=False, retry=True)
        resolved_times.append(resolved.time if resolved.time is not None
                              else 0)

    schema = table.schema
    columns = [SCHEMA_ENCODING_COLUMN, START_TIME_COLUMN,
               LAST_UPDATED_COLUMN]
    columns.extend(schema.data_column_indices())

    def cell_value(offset: int, column: int) -> Any:
        if offset in tombstones:
            if column == SCHEMA_ENCODING_COLUMN:
                return SchemaEncoding.empty(schema.num_columns).to_int()
            if column in (START_TIME_COLUMN, LAST_UPDATED_COLUMN):
                return 0
            return NULL
        if column in (START_TIME_COLUMN, LAST_UPDATED_COLUMN):
            return resolved_times[offset]
        return segment.record_cell(first + offset, column)

    pages_created = 0
    if table.layout is Layout.ROW:
        new_pages = _build_row_pages(table, update_range, cell_value,
                                     PageKind.BASE, NULL_RID, 0)
        table.page_directory.register_many(new_pages)
        table.page_directory.set_base_chain(
            update_range.range_id, ROW_CHAIN_COLUMN, new_pages)
        pages_created = len(new_pages)
    else:
        for column in columns:
            values = [cell_value(offset, column) for offset in range(size)]
            chain = _build_column_pages(table, column, values,
                                        PageKind.BASE, NULL_RID, 0)
            table.page_directory.register_many(chain)
            table.page_directory.set_base_chain(
                update_range.range_id, column, chain)
            pages_created += len(chain)

    update_range.base_tombstones = tombstones
    update_range.merged_max_time = max(update_range.merged_max_time,
                                       max(resolved_times, default=0))
    update_range.merged = True

    # The table-level tail pages of this sub-range can now be discarded
    # permanently (epoch-protected).
    retired = segment.pages_for_slots(first, first + size)
    table.epoch_manager.retire(
        retired, retired_at=table.clock.advance(),
        on_reclaim=lambda page: table.page_directory.unregister(
            page.page_id),
        reclaim=False)
    return MergeResult(performed=True, records_consolidated=size,
                       pages_created=pages_created)


# ---------------------------------------------------------------------------
# Regular merge (Algorithm 1)
# ---------------------------------------------------------------------------

def merge_update_range(table: Table, update_range: UpdateRange,
                       max_records: int | None = None, *,
                       reclaim: bool = True) -> MergeResult:
    """Consolidate committed tail records into new merged pages.

    Steps follow Algorithm 1: (1) select a consecutive committed prefix
    of tail records since the last merge; (2) copy the outdated base
    pages; (3) apply the newest version per record/column scanning the
    prefix in reverse; (4) swap the page-directory pointers; (5) retire
    the outdated pages through the epoch manager.
    """
    with update_range.merge_lock:
        result = _merge_update_range_locked(table, update_range, max_records)
    if reclaim and result.performed:
        table.epoch_manager.reclaim()
    return result


def _merge_update_range_locked(table: Table, update_range: UpdateRange,
                               max_records: int | None) -> MergeResult:
    if not update_range.merged:
        return MergeResult(performed=False, retry=True)
    tail = update_range.tail
    if tail is None:
        return MergeResult(performed=False)

    # -- Step 1: consecutive committed tail records since the last merge.
    start_offset = update_range.merged_upto
    limit = tail.num_allocated()
    if max_records is not None:
        limit = min(limit, start_offset + max_records)
    schema = table.schema
    num_columns = schema.num_columns
    mask = (1 << num_columns) - 1
    snapshot_bit = 1 << num_columns
    top_bit = 1 << (num_columns - 1)
    meta_columns = (SCHEMA_ENCODING_COLUMN, START_TIME_COLUMN,
                    BASE_RID_COLUMN)
    end_offset = start_offset
    while end_offset < limit:
        if not tail.record_written(end_offset):
            break
        if tail.is_tombstone(end_offset):
            end_offset += 1
            continue
        # _tail_committed_time also stamps resolved markers in place —
        # the merge doubles as an eager lazy-stamping pass, so later
        # readers (and the auto-GC sweep) skip the manager lookup.
        if table._tail_committed_time(
                tail, end_offset,
                tail.record_cell(end_offset, START_TIME_COLUMN)) is None:
            break
        end_offset += 1
    if end_offset == start_offset:
        return MergeResult(performed=False)

    size = update_range.size
    records_per_page = table.config.records_per_page

    # -- Step 3 (scan phase): newest value per (record, column), reverse.
    # Raw encoding ints and batched metadata reads: the scan visits
    # every consolidated tail record once, and this loop was the merge
    # thread's top profile frame under OLTP load.
    seen: set[tuple[int, int]] = set()
    deleted: set[int] = set()
    applied_values: dict[tuple[int, int], Any] = {}
    last_updated: dict[int, int] = {}
    encoding_delta: dict[int, int] = {}
    touched_columns: set[int] = set()
    start_rid = update_range.start_rid
    for tail_offset in range(end_offset - 1, start_offset - 1, -1):
        if tail.is_tombstone(tail_offset):
            continue
        encoding, start_cell, base_rid = tail.record_cells(
            tail_offset, meta_columns)
        if encoding & snapshot_bit:
            continue
        record_offset = base_rid - start_rid
        if record_offset not in last_updated:
            commit_time = table.committed_time(start_cell)
            last_updated[record_offset] = commit_time \
                if commit_time is not None else 0
        bits = encoding & mask
        if not bits:
            # Delete record: newest for this record wins; a delete can
            # only be the newest (updates after delete are rejected).
            if record_offset not in deleted \
                    and not any(key[0] == record_offset for key in seen):
                deleted.add(record_offset)
                touched_columns.update(range(num_columns))
            continue
        if record_offset not in deleted:
            for data_column in range(num_columns):
                if not bits & (top_bit >> data_column):
                    continue
                key = (record_offset, data_column)
                if key in seen:
                    continue
                seen.add(key)
                touched_columns.add(data_column)
                applied_values[key] = tail.record_cell(
                    tail_offset, schema.physical_index(data_column))
        encoding_delta[record_offset] = encoding_delta.get(
            record_offset, 0) | bits

    new_tps = tail.rid_at(end_offset - 1)
    if tps_applied(update_range.tps_rid, new_tps) \
            and update_range.tps_rid != new_tps:
        raise LineageError(
            "merge would move TPS backwards: %d -> %d"
            % (update_range.tps_rid, new_tps))
    new_merge_count = update_range.merge_count + 1

    # -- Steps 2+3 (build phase): copy base pages, apply updates.
    fault_hit("merge.before_install")
    old_pages: list[Page | RowPage] = []
    pages_created = 0
    if table.layout is Layout.ROW:
        def row_cell(offset: int, column: int) -> Any:
            if column == LAST_UPDATED_COLUMN:
                current = table._read_base_cell(update_range, offset, column)
                return last_updated.get(offset, current)
            if column == SCHEMA_ENCODING_COLUMN:
                current = table._read_base_cell(update_range, offset, column)
                delta = encoding_delta.get(offset, 0)
                return (current | delta) & ((1 << num_columns) - 1)
            if column in (START_TIME_COLUMN, INDIRECTION_COLUMN,
                          BASE_RID_COLUMN):
                return table._read_base_cell(update_range, offset, column)
            data_column = schema.data_index(column)
            if offset in deleted:
                return NULL
            key = (offset, data_column)
            if key in applied_values:
                return applied_values[key]
            return table._read_base_cell(update_range, offset, column)

        new_pages = _build_row_pages(table, update_range, row_cell,
                                     PageKind.MERGED, new_tps,
                                     new_merge_count)
        table.page_directory.register_many(new_pages)
        old_pages.extend(table.page_directory.swap_base_chain(
            update_range.range_id, ROW_CHAIN_COLUMN, new_pages))
        pages_created += len(new_pages)
    else:
        # Group the applied updates by column for page-wise application.
        updates_by_column: dict[int, list[tuple[int, Any]]] = {}
        for (offset, data_column), value in applied_values.items():
            updates_by_column.setdefault(data_column, []).append(
                (offset, value))

        # Data columns touched by this batch get fresh pages.
        for data_column in sorted(touched_columns):
            physical = schema.physical_index(data_column)
            values = _chain_copy(table, update_range, physical)
            for offset, value in updates_by_column.get(data_column, ()):
                values[offset] = value
            for offset in deleted:
                values[offset] = NULL
            chain = _build_column_pages(table, physical, values,
                                        PageKind.MERGED, new_tps,
                                        new_merge_count)
            table.page_directory.register_many(chain)
            old_pages.extend(table.page_directory.swap_base_chain(
                update_range.range_id, physical, chain))
            pages_created += len(chain)
        # Metadata columns rebuilt every merge: Last Updated Time and
        # Schema Encoding (Start Time is preserved untouched).
        values = _chain_copy(table, update_range, LAST_UPDATED_COLUMN)
        for offset, commit_time in last_updated.items():
            values[offset] = commit_time
        chain = _build_column_pages(table, LAST_UPDATED_COLUMN, values,
                                    PageKind.MERGED, new_tps,
                                    new_merge_count)
        table.page_directory.register_many(chain)
        old_pages.extend(table.page_directory.swap_base_chain(
            update_range.range_id, LAST_UPDATED_COLUMN, chain))
        pages_created += len(chain)
        mask = (1 << num_columns) - 1
        values = _chain_copy(table, update_range, SCHEMA_ENCODING_COLUMN)
        for offset, delta in encoding_delta.items():
            values[offset] = (values[offset] | delta) & mask
        chain = _build_column_pages(table, SCHEMA_ENCODING_COLUMN, values,
                                    PageKind.MERGED, new_tps,
                                    new_merge_count)
        table.page_directory.register_many(chain)
        old_pages.extend(table.page_directory.swap_base_chain(
            update_range.range_id, SCHEMA_ENCODING_COLUMN, chain))
        pages_created += len(chain)
        # Untouched columns keep their pages but advance their lineage:
        # the batch provably contains no update for them, so the pages
        # are already "as of" the new TPS (keeps Lemma 3 checks quiet).
        untouched = [schema.physical_index(c) for c in range(num_columns)
                     if c not in touched_columns]
        untouched.append(START_TIME_COLUMN)
        for physical in untouched:
            chain = table.page_directory.base_chain(
                update_range.range_id, physical)
            if chain is None:
                continue
            for page in chain:
                page.set_lineage(new_tps, new_merge_count)

    # -- Step 4 bookkeeping: lineage watermarks (under the range lock so
    # readers see a consistent (merged_upto, tps) pair).
    with update_range.lock:
        update_range.merged_upto = end_offset
        update_range.tps_rid = new_tps
        update_range.merge_count = new_merge_count
        update_range.base_tombstones -= deleted  # deletes now materialised
        update_range.merged_max_time = max(
            update_range.merged_max_time,
            max(last_updated.values(), default=0))

    # Release the consumed prefix from the incremental scan patch-set —
    # strictly after the chain swap and watermark advance, so a
    # concurrent scan that already snapshotted the patch-set can only
    # over-patch against the new pages, never under-patch.
    # Materialise the offsets BEFORE prune_dirty takes the dirty lock:
    # iter_base_rids acquires the tail segment's allocation latch, and a
    # lazy generator would drag that acquisition inside the dirty-lock
    # hold (lock-order inversion witnessed by REPRO_LOCK_CHECK).
    update_range.prune_dirty(
        [base_rid - update_range.start_rid
         for _, base_rid in tail.iter_base_rids(start_offset, end_offset)])
    # The consumed prefix left the unmerged tail: recompute the
    # version horizon over the remaining suffix (after the watermark
    # advance, so the scan covers exactly the unmerged records).
    table.rebuild_unmerged_horizon(update_range)

    fault_hit("merge.after_install")

    # -- Step 5: epoch-based de-allocation of the outdated pages.
    table.epoch_manager.retire(
        old_pages, retired_at=table.clock.advance(),
        on_reclaim=lambda page: table.page_directory.unregister(
            page.page_id),
        reclaim=False)
    return MergeResult(performed=True,
                       records_consolidated=end_offset - start_offset,
                       pages_created=pages_created)


# ---------------------------------------------------------------------------
# Decoupled per-column merge (Section 4.2 extension)
# ---------------------------------------------------------------------------

def merge_columns(table: Table, update_range: UpdateRange,
                  data_columns: Sequence[int],
                  max_records: int | None = None, *,
                  reclaim: bool = True) -> MergeResult:
    """Merge only *data_columns* of one range, independently.

    "There is even no dependency among columns during the merge; thus,
    the different columns of the same record can be merged completely
    independent of each other at different points in time" (Section
    4.1). The merged columns' pages advance to the batch's TPS while
    every other chain keeps its old lineage — the exact situation
    Lemma 3 makes detectable and Theorem 2 makes repairable: a reader
    touching both sees the TPS mismatch and falls back to the
    always-correct chain walk.

    Range-level bookkeeping (``merged_upto``, the range TPS) does *not*
    advance: only a full :func:`merge_update_range` may, since it is
    the minimum watermark across all columns. Re-applying the same
    batch later is harmless — the merge is idempotent.
    """
    with update_range.merge_lock:
        if not update_range.merged or table.layout is Layout.ROW:
            return MergeResult(performed=False, retry=True)
        tail = update_range.tail
        if tail is None:
            return MergeResult(performed=False)
        schema = table.schema
        num_columns = schema.num_columns
        wanted = set(data_columns)

        start_offset = update_range.merged_upto
        limit = tail.num_allocated()
        if max_records is not None:
            limit = min(limit, start_offset + max_records)
        end_offset = start_offset
        while end_offset < limit:
            if not tail.record_written(end_offset):
                break
            if tail.is_tombstone(end_offset):
                end_offset += 1
                continue
            if not table.resolve_cell(tail.record_cell(
                    end_offset, START_TIME_COLUMN)).committed:
                break
            end_offset += 1
        if end_offset == start_offset:
            return MergeResult(performed=False)

        seen: set[tuple[int, int]] = set()
        deleted: set[int] = set()
        applied: dict[tuple[int, int], Any] = {}
        for tail_offset in range(end_offset - 1, start_offset - 1, -1):
            if tail.is_tombstone(tail_offset):
                continue
            encoding = tail.record_cell(tail_offset,
                                        SCHEMA_ENCODING_COLUMN)
            if encoding & (1 << num_columns):  # snapshot
                continue
            base_rid = tail.record_cell(tail_offset, BASE_RID_COLUMN)
            record_offset = base_rid - update_range.start_rid
            bits = encoding & ((1 << num_columns) - 1)
            if not bits:
                if record_offset not in deleted and not any(
                        key[0] == record_offset for key in seen):
                    deleted.add(record_offset)
                continue
            for data_column in wanted:
                if bits & (1 << (num_columns - 1 - data_column)):
                    key = (record_offset, data_column)
                    if key not in seen and record_offset not in deleted:
                        seen.add(key)
                        applied[key] = tail.record_cell(
                            tail_offset,
                            schema.physical_index(data_column))

        new_tps = tail.rid_at(end_offset - 1)
        fault_hit("merge.before_install")
        old_pages: list[Page | RowPage] = []
        pages_created = 0
        for data_column in sorted(wanted):
            physical = schema.physical_index(data_column)
            values = _chain_copy(table, update_range, physical)
            for (offset, column), value in applied.items():
                if column == data_column:
                    values[offset] = value
            for offset in deleted:
                values[offset] = NULL
            new_chain = _build_column_pages(
                table, physical, values, PageKind.MERGED, new_tps,
                update_range.merge_count + 1)
            table.page_directory.register_many(new_chain)
            old_pages.extend(table.page_directory.swap_base_chain(
                update_range.range_id, physical, new_chain))
            pages_created += len(new_chain)
        fault_hit("merge.after_install")
        table.epoch_manager.retire(
            old_pages, retired_at=table.clock.advance(),
            on_reclaim=lambda page: table.page_directory.unregister(
                page.page_id),
            reclaim=False)
        result = MergeResult(performed=True,
                             records_consolidated=end_offset - start_offset,
                             pages_created=pages_created)
    if reclaim:
        table.epoch_manager.reclaim()
    return result


# ---------------------------------------------------------------------------
# Step-2 buffer-slice copies and page builders
# ---------------------------------------------------------------------------

#: Sidecar-miss marker (∅ and 0 are real cell values).
_ABSENT = object()


class _ColumnBuffer:
    """Step-2 copy of one column as a mutable int64 buffer.

    Byte-buffer chains copy as raw ``memoryview`` slices (one C-level
    splice per page) instead of materialising a Python list per cell;
    the merge's step-3 patching then writes through ``__setitem__``
    (a C-level int store for the common case) and the install phase
    hands each page its buffer window verbatim. ∅ offsets and sidecar
    objects ride along as a set/dict, exactly mirroring the
    :class:`~repro.core.page.BytesPage` layout.
    """

    __slots__ = ("view", "nulls", "side")

    def __init__(self, view: memoryview, nulls: set[int],
                 side: dict[int, Any]) -> None:
        self.view = view
        self.nulls = nulls
        self.side = side

    def __len__(self) -> int:
        return len(self.view)

    def __getitem__(self, offset: int) -> Any:
        if offset in self.nulls:
            return NULL
        value = self.side.get(offset, _ABSENT)
        if value is not _ABSENT:
            return value
        return self.view[offset]

    def __setitem__(self, offset: int, value: Any) -> None:
        self.nulls.discard(offset)
        self.side.pop(offset, None)
        if type(value) is int:
            try:
                self.view[offset] = value
                return
            except OverflowError:
                pass
        self.view[offset] = 0
        if is_null(value):
            self.nulls.add(offset)
        else:
            self.side[offset] = value


def _copy_column_buffer(chain) -> _ColumnBuffer | None:
    """Copy a base chain as raw buffer slices, or None to fall back.

    Every page must be a dense :class:`BytesPage`; chains holding
    object-list, dictionary-compressed, or sparse pages return None and
    take the list copy path instead.
    """
    exports = []
    for page in chain:
        export = page.export_dense() if isinstance(page, BytesPage) \
            else None
        if export is None:
            return None
        exports.append(export)
    total = sum(export[0] for export in exports)
    buf = bytearray(8 * total)
    raw_view = memoryview(buf)
    nulls: set[int] = set()
    side: dict[int, Any] = {}
    base = 0
    byte_offset = 0
    for count, raw, null_bitmap, sidecar in exports:
        raw_view[byte_offset:byte_offset + len(raw)] = raw
        for byte_index, byte in enumerate(null_bitmap):
            if not byte:
                continue
            slot_base = byte_index << 3
            for bit in range(8):
                if byte & (1 << bit) and slot_base + bit < count:
                    nulls.add(base + slot_base + bit)
        for slot, value in sidecar.items():
            side[base + slot] = value
        base += count
        byte_offset += len(raw)
    return _ColumnBuffer(memoryview(buf).cast("q"), nulls, side)


def _chain_copy(table: Table, update_range: UpdateRange,
                physical: int) -> Any:
    """Step 2: copy ("decompress") the current base pages of a column.

    Returns a :class:`_ColumnBuffer` (buffer-slice copy) when the chain
    is all dense byte-buffer pages, else a plain value list — both
    support ``len``/indexing, so the step-3 patching code is agnostic.
    """
    chain = table.page_directory.base_chain(update_range.range_id,
                                            physical)
    if table.config.bytes_pages:
        copied = _copy_column_buffer(chain)
        if copied is not None:
            return copied
    values: list[Any] = []
    for page in chain:
        values.extend(page.values_list()
                      if hasattr(page, "values_list")
                      else page.iter_values())
    return values


def _build_column_pages(table: Table, column: int, values: Any,
                        kind: PageKind, tps_rid: int,
                        merge_count: int) -> list[Page]:
    """Pack *values* into frozen pages of the configured capacity.

    *values* is either a plain list (filled slot-by-slot into the
    configured page class) or a :class:`_ColumnBuffer`, whose buffer
    windows splice straight into fresh byte-buffer pages.
    """
    records_per_page = table.config.records_per_page
    if isinstance(values, _ColumnBuffer):
        return _build_bytes_pages(table, column, values, kind, tps_rid,
                                  merge_count)
    page_class = BytesPage if table.config.bytes_pages else Page
    pages: list[Page] = []
    for start in range(0, len(values), records_per_page):
        page = page_class(table.page_counter.next(), kind,
                          records_per_page, column)
        page.fill(values[start:start + records_per_page])
        page.set_lineage(tps_rid, merge_count)
        if table.config.compress_merged_pages:
            page = maybe_compress_page(page)
        pages.append(page)
    return pages


def _build_bytes_pages(table: Table, column: int, buffer: _ColumnBuffer,
                       kind: PageKind, tps_rid: int,
                       merge_count: int) -> list[Page]:
    """Install a :class:`_ColumnBuffer` as frozen byte-buffer pages."""
    records_per_page = table.config.records_per_page
    raw = buffer.view.cast("B")
    total = len(buffer)
    pages: list[Page] = []
    for start in range(0, total, records_per_page):
        count = min(records_per_page, total - start)
        page = BytesPage(table.page_counter.next(), kind,
                         records_per_page, column)
        null_bitmap = bytearray((count + 7) >> 3)
        for offset in buffer.nulls:
            if start <= offset < start + count:
                slot = offset - start
                null_bitmap[slot >> 3] |= 1 << (slot & 7)
        sidecar = {offset - start: value
                   for offset, value in buffer.side.items()
                   if start <= offset < start + count}
        page.install_dense(raw[8 * start:8 * (start + count)], count,
                           null_bitmap, sidecar)
        page.freeze()
        page.set_lineage(tps_rid, merge_count)
        if table.config.compress_merged_pages:
            page = maybe_compress_page(page)
        pages.append(page)
    return pages


def _build_row_pages(table: Table, update_range: UpdateRange,
                     cell_value, kind: PageKind, tps_rid: int,
                     merge_count: int) -> list[RowPage]:
    """Row-layout variant of :func:`_build_column_pages`."""
    records_per_page = table.config.records_per_page
    width = table.schema.total_columns
    pages: list[RowPage] = []
    for start in range(0, update_range.size, records_per_page):
        page = RowPage(table.page_counter.next(), kind, records_per_page,
                       width)
        for slot in range(min(records_per_page, update_range.size - start)):
            offset = start + slot
            row = [cell_value(offset, column) for column in range(width)]
            page.write_row(slot, row)
        page.freeze()
        page.set_lineage(tps_rid, merge_count)
        pages.append(page)
    return pages
