"""Epoch-based, contention-free page de-allocation (Section 4.1.1, Fig. 6).

Outdated base pages cannot be freed the moment a merge swaps them out of
the page directory: an in-flight query may still hold references. The
paper defines the epoch as "a time window in which the outdated base
pages must be kept around as long as there is an active query that
started before the merge process"; pointers are parked in a queue and
reclaimed once those readers drain naturally — no transaction is ever
blocked or drained forcibly (the defining contrast with the Delta +
Blocking Merge baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..analysis.locks import ENABLED as _LOCK_CHECK
from ..analysis.locks import guard_callback, make_lock
from .page import Page, RowPage

AnyPage = Page | RowPage


@dataclass(frozen=True)
class QueryEpoch:
    """Handle for one active query's membership in the epoch registry."""

    token: int
    begin_time: int


@dataclass
class _RetiredBatch:
    """A batch of pages retired at one merge completion."""

    pages: tuple[AnyPage, ...]
    retired_at: int
    on_reclaim: Callable[[AnyPage], None] | None = field(default=None)


class EpochManager:
    """Tracks active queries and reclaims retired pages safely.

    ``enter_query`` / ``exit_query`` bracket every reader (scans and
    point lookups alike). ``retire`` parks outdated pages stamped with
    the retirement time; ``reclaim`` frees every batch whose retirement
    time precedes the begin time of all still-active queries.

    Reclamation is opportunistic: it runs whenever a query exits or a
    batch is retired, so no dedicated vacuum thread is needed (one may
    still call :meth:`reclaim` explicitly, e.g. from tests).
    """

    def __init__(self) -> None:
        self._lock = make_lock("epoch")
        self._active: dict[int, int] = {}
        self._next_token = 0
        self._retired: list[_RetiredBatch] = []
        self._reclaimed_pages = 0
        self._low_water = 0

    # -- query registry ----------------------------------------------------

    def enter_query(self, begin_time: int) -> QueryEpoch:
        """Register a query that begins at *begin_time*."""
        with self._lock:
            token = self._next_token
            self._next_token += 1
            self._active[token] = begin_time
            return QueryEpoch(token=token, begin_time=begin_time)

    def exit_query(self, epoch: QueryEpoch) -> None:
        """Deregister a query; opportunistically reclaim."""
        with self._lock:
            self._active.pop(epoch.token, None)
        self.reclaim()

    def oldest_active_begin(self) -> int | None:
        """Begin time of the longest-running active query, or None."""
        with self._lock:
            if not self._active:
                return None
            return min(self._active.values())

    @property
    def active_queries(self) -> int:
        """Number of currently registered queries."""
        with self._lock:
            return len(self._active)

    def low_water_mark(self, now: int) -> int:
        """Lazily-stamped low-water mark of registered readers.

        Everything retired (pages) or superseded (transaction entries)
        strictly before the mark predates every registered query, so
        consumers such as the transaction-manager auto-GC may prune up
        to it. The mark is stamped lazily — recomputed only when asked,
        and monotone (it never moves backwards even if *now* does not
        advance between calls).
        """
        with self._lock:
            horizon = min(self._active.values()) if self._active else now
            if horizon > self._low_water:
                self._low_water = horizon
            return self._low_water

    # -- retirement ------------------------------------------------------------

    def retire(self, pages: Iterable[AnyPage], retired_at: int,
               on_reclaim: Callable[[AnyPage], None] | None = None,
               reclaim: bool = True) -> None:
        """Park *pages* for reclamation once pre-merge readers drain.

        *on_reclaim* (e.g. page-directory unregistration) runs once per
        page at reclamation time.  Callers that hold hot locks (the
        merge paths) pass ``reclaim=False`` and trigger
        :meth:`reclaim` themselves after releasing them, so the
        *on_reclaim* hooks never fire under an engine latch.
        """
        batch = _RetiredBatch(tuple(pages), retired_at, on_reclaim)
        if not batch.pages:
            return
        with self._lock:
            self._retired.append(batch)
        if reclaim:
            self.reclaim()

    def reclaim(self) -> int:
        """Free every batch no active query could still reference.

        Returns the number of pages reclaimed by this call.
        """
        with self._lock:
            horizon = min(self._active.values()) if self._active else None
            ready: list[_RetiredBatch] = []
            remaining: list[_RetiredBatch] = []
            for batch in self._retired:
                # Safe when every active query began after the pages were
                # retired (it can only have seen the new chain), or when
                # no query is active at all.
                if horizon is None or batch.retired_at < horizon:
                    ready.append(batch)
                else:
                    remaining.append(batch)
            self._retired = remaining
        count = 0
        for batch in ready:
            for page in batch.pages:
                page.deallocated = True
                if batch.on_reclaim is not None:
                    if _LOCK_CHECK:
                        guard_callback("epoch on_reclaim")
                    batch.on_reclaim(page)
                count += 1
        with self._lock:
            self._reclaimed_pages += count
        return count

    # -- observability ------------------------------------------------------------

    @property
    def pending_pages(self) -> int:
        """Pages retired but not yet reclaimed."""
        with self._lock:
            return sum(len(batch.pages) for batch in self._retired)

    @property
    def reclaimed_pages(self) -> int:
        """Total pages reclaimed over the manager's lifetime."""
        with self._lock:
            return self._reclaimed_pages
