"""Database front door: tables, shared clock, merge engine, transactions.

``Database`` wires the subsystems together the way the paper's prototype
does: one synchronized clock and one transaction manager for all tables,
one merge engine (optionally a background thread, Figure 5), one epoch
manager for contention-free de-allocation, and optional durability
(write-ahead log + page files) when a data directory is configured.
"""

from __future__ import annotations

import os
from typing import Any

from ..errors import LStoreError, SchemaMismatchError
from ..txn.clock import SynchronizedClock
from ..txn.manager import TransactionManager
from ..txn.transaction import Transaction
from .config import EngineConfig
from .epoch import EpochManager
from .merge import MergeEngine
from .query import Query
from .schema import TableSchema
from .table import Table
from .types import IsolationLevel


class Database:
    """A collection of L-Store tables sharing engine services."""

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config if config is not None else EngineConfig()
        self.clock = SynchronizedClock()
        self.epoch_manager = EpochManager()
        self.txn_manager = TransactionManager(self.clock)
        self.merge_engine = MergeEngine(
            poll_interval=self.config.merge_poll_interval)
        from ..exec.executor import ScanExecutor
        #: Shared analytical scan executor: all tables' scan partitions
        #: run on one bounded worker pool (config.scan_parallelism).
        self.scan_executor = ScanExecutor(self.config.scan_parallelism)
        self.tables: dict[str, Table] = {}
        self._wal = None
        self._open = True
        #: Set by :func:`~repro.wal.recovery.recover_database` on the
        #: database it returns: what recovery replayed and salvaged.
        self.recovery_report = None
        self._checkpoint_seq = 0
        if self.config.failpoints:
            from ..fault import FAULTS
            FAULTS.configure(self.config.failpoints)
        if self.config.txn_gc_threshold:
            self.txn_manager.enable_auto_gc(
                self.epoch_manager, threshold=self.config.txn_gc_threshold)
        if self.config.background_merge:
            self.merge_engine.start()
        if self.config.wal_enabled and self.config.data_dir:
            from ..fault import hit as fault_hit
            from ..wal.log import LogManager
            from ..wal.records import TxnAbortRecord, TxnCommitRecord
            os.makedirs(self.config.data_dir, exist_ok=True)
            self._wal = LogManager(
                os.path.join(self.config.data_dir, "wal.log"),
                segment_bytes=self.config.wal_segment_bytes,
                sync_retries=self.config.wal_sync_retries,
                retry_backoff=self.config.wal_retry_backoff)
            wal = self._wal

            def commit_sink(txn_id: int, commit_time: int) -> None:
                fault_hit("txn.before_commit_record")
                wal.append(TxnCommitRecord(txn_id=txn_id,
                                           commit_time=commit_time))
                fault_hit("txn.after_commit_record")

            self.txn_manager.commit_sink = commit_sink
            self.txn_manager.abort_sink = (
                lambda txn_id: wal.append(TxnAbortRecord(txn_id=txn_id)))

    # -- tables ------------------------------------------------------------

    def create_table(self, name: str, num_columns: int, key_index: int = 0,
                     column_names: tuple[str, ...] | None = None,
                     config: EngineConfig | None = None) -> Table:
        """Create a table and attach it to the engine services."""
        if name in self.tables:
            raise SchemaMismatchError("table %r already exists" % name)
        schema = TableSchema(name=name, num_columns=num_columns,
                             key_index=key_index,
                             column_names=column_names or ())
        table = Table(schema, config if config is not None else self.config,
                      clock=self.clock, epoch_manager=self.epoch_manager,
                      txn_source=self.txn_manager)
        table.scan_executor = self.scan_executor
        self.txn_manager.register_stamp_source(table.stamp_tail_markers)
        self.merge_engine.attach(table)
        if self._wal is not None:
            from ..wal.log import attach_table_logging
            attach_table_logging(self._wal, table)
        self.tables[name] = table
        return table

    def get_table(self, name: str) -> Table:
        """Return the table called *name*."""
        try:
            return self.tables[name]
        except KeyError:
            raise LStoreError("no table named %r" % name) from None

    def drop_table(self, name: str) -> None:
        """Drop the table called *name*."""
        table = self.tables.pop(name, None)
        if table is not None:
            # Release the auto-GC sweep's reference, or the dropped
            # table (pages, segments, indexes) stays alive and swept.
            self.txn_manager.unregister_stamp_source(
                table.stamp_tail_markers)

    def query(self, name: str) -> Query:
        """Auto-commit query handle for table *name*."""
        return Query(self.get_table(name))

    # -- transactions ------------------------------------------------------------

    def begin_transaction(
            self, *,
            isolation: IsolationLevel = IsolationLevel.READ_COMMITTED,
    ) -> Transaction:
        """Open a multi-statement transaction."""
        return Transaction(self.txn_manager, isolation=isolation)

    # -- maintenance ------------------------------------------------------------

    def run_merges(self) -> int:
        """Drain the merge queue synchronously (deterministic mode)."""
        return self.merge_engine.run_pending()

    def compress_history(self) -> int:
        """Run the historic tail compression pass over every table."""
        from .compression import compress_historic_tails
        compressed = 0
        for table in self.tables.values():
            for update_range in table.sorted_ranges():
                compressed += compress_historic_tails(table, update_range)
        return compressed

    def checkpoint(self) -> "Any":
        """Write a checkpoint image so recovery replays only the suffix.

        Requires durability to be configured (``wal_enabled`` +
        ``data_dir``). Returns the
        :class:`~repro.wal.checkpoint.CheckpointResult`.
        """
        if self._wal is None:
            raise LStoreError("checkpoint requires wal_enabled + data_dir")
        from ..wal.checkpoint import write_checkpoint
        return write_checkpoint(self)

    def vacuum_indexes(self) -> int:
        """Vacuum deferred secondary-index entries on every table."""
        oldest = self.epoch_manager.oldest_active_begin()
        return sum(table.index.vacuum(oldest)
                   for table in self.tables.values())

    def close(self) -> None:
        """Stop background services and flush durability state."""
        if not self._open:
            return
        self.merge_engine.stop(drain=True)
        self.scan_executor.close()
        if self._wal is not None:
            # close() flushes; a poisoned (fail-stopped) log closes
            # without raising — nothing more can be made durable.
            self._wal.close()
        self._open = False

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
