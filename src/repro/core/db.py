"""Database front door: tables, shared clock, merge engine, transactions.

``Database`` wires the subsystems together the way the paper's prototype
does: one synchronized clock and one transaction manager for all tables,
one merge engine (optionally a background thread, Figure 5), one epoch
manager for contention-free de-allocation, and optional durability
(write-ahead log + page files) when a data directory is configured.
"""

from __future__ import annotations

import os
from typing import Any

from ..errors import LStoreError, SchemaMismatchError
from ..txn.clock import SynchronizedClock
from ..txn.manager import TransactionManager
from ..txn.transaction import Transaction
from .config import EngineConfig
from .epoch import EpochManager
from .merge import MergeEngine
from .query import Query
from .schema import TableSchema
from .table import Table
from .types import IsolationLevel


class Database:
    """A collection of L-Store tables sharing engine services."""

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config if config is not None else EngineConfig()
        from ..obs.registry import MetricsRegistry
        #: The engine-wide metrics registry (:mod:`repro.obs`): every
        #: component of this database shares it, so one snapshot (or
        #: one render_text scrape) covers all layers.
        self.metrics_registry = MetricsRegistry(
            enabled=self.config.obs_metrics)
        self.clock = SynchronizedClock()
        self.epoch_manager = EpochManager()
        self.txn_manager = TransactionManager(
            self.clock, metrics=self.metrics_registry)
        self.merge_engine = MergeEngine(
            poll_interval=self.config.merge_poll_interval,
            batch_ranges=self.config.merge_batch_ranges,
            quarantine_after=self.config.merge_quarantine_after,
            metrics=self.metrics_registry)
        from ..health import AdmissionController, Supervisor, check_health
        self._check_health = check_health
        #: Supervisor for the background services (merge daemon,
        #: metrics sampler): crash capture, backoff restarts,
        #: give-up accounting (:mod:`repro.health`).
        self.supervisor = Supervisor(
            metrics=self.metrics_registry,
            backoff_base=self.config.supervisor_backoff_base,
            backoff_cap=self.config.supervisor_backoff_cap,
            max_restarts=self.config.supervisor_max_restarts)
        #: Write-path admission controller; None unless backlog
        #: watermarks are configured (tables then keep admission=None
        #: and the write path stays zero-cost).
        self._admission = None
        if self.config.merge_backlog_soft is not None \
                or self.config.merge_backlog_hard is not None:
            self._admission = AdmissionController(
                lambda: self.merge_engine.backlog,
                soft=self.config.merge_backlog_soft,
                hard=self.config.merge_backlog_hard,
                throttle_wait=self.config.backpressure_throttle,
                max_wait=self.config.backpressure_max_wait,
                drain_kick=self.merge_engine.kick,
                metrics=self.metrics_registry)
        from ..exec.executor import ScanExecutor
        #: Shared analytical scan executor: all tables' scan partitions
        #: run on one bounded worker pool (config.scan_parallelism).
        self.scan_executor = ScanExecutor(self.config.scan_parallelism)
        self.tables: dict[str, Table] = {}
        self._wal = None
        self._open = True
        #: Set by :func:`~repro.wal.recovery.recover_database` on the
        #: database it returns: what recovery replayed and salvaged.
        self.recovery_report = None
        self._checkpoint_seq = 0
        self._sampler = None
        registry = self.metrics_registry
        registry.gauge(
            "gc.low_water_lag",
            lambda: max(0, self.clock.now()
                        - self.epoch_manager.low_water_mark(
                            self.clock.now())),
            help="Clock ticks between now and the epoch low-water mark")
        registry.gauge("gc.active_queries",
                       lambda: self.epoch_manager.active_queries,
                       help="Query epochs currently registered")
        registry.gauge("gc.pages_pending",
                       lambda: self.epoch_manager.pending_pages,
                       help="Retired pages awaiting epoch reclamation")
        registry.gauge("gc.pages_reclaimed",
                       lambda: self.epoch_manager.reclaimed_pages,
                       help="Retired pages reclaimed so far")
        registry.gauge("gc.txn_entries",
                       lambda: len(self.txn_manager._entries),
                       help="Live transaction-manager hashtable entries")
        registry.gauge(
            "storage.page_bytes",
            lambda: sum(table.page_directory.buffer_bytes()
                        for table in self.tables.values()),
            help="Bytes held in fixed-width page buffers (byte-buffer "
                 "pages; object-list oracle pages report 0)")
        registry.gauge(
            "health.state",
            lambda: int(self.health().state),
            help="Engine health verdict: 0 OK, 1 DEGRADED, 2 FAILED")
        if self.config.failpoints:
            from ..fault import FAULTS
            FAULTS.configure(self.config.failpoints)
        if self.config.txn_gc_threshold:
            self.txn_manager.enable_auto_gc(
                self.epoch_manager, threshold=self.config.txn_gc_threshold)
        if self.config.background_merge:
            self.merge_engine.start(supervisor=self.supervisor)
        if self.config.wal_enabled and self.config.data_dir:
            from ..fault import hit as fault_hit
            from ..wal.log import LogManager
            from ..wal.records import TxnAbortRecord, TxnCommitRecord
            os.makedirs(self.config.data_dir, exist_ok=True)
            self._wal = LogManager(
                os.path.join(self.config.data_dir, "wal.log"),
                segment_bytes=self.config.wal_segment_bytes,
                sync_retries=self.config.wal_sync_retries,
                retry_backoff=self.config.wal_retry_backoff,
                metrics=self.metrics_registry)
            wal = self._wal

            def commit_sink(txn_id: int, commit_time: int) -> None:
                fault_hit("txn.before_commit_record")
                wal.append(TxnCommitRecord(txn_id=txn_id,
                                           commit_time=commit_time))
                fault_hit("txn.after_commit_record")

            self.txn_manager.commit_sink = commit_sink
            self.txn_manager.abort_sink = (
                lambda txn_id: wal.append(TxnAbortRecord(txn_id=txn_id)))
        if self.config.obs_sample_interval is not None:
            from ..obs.sampler import MetricsSampler
            path = self.config.obs_sample_path
            if path is None:
                path = os.path.join(self.config.data_dir, "metrics.jsonl") \
                    if self.config.data_dir else "metrics.jsonl"
            self._sampler = MetricsSampler(
                self.metrics, path, self.config.obs_sample_interval,
                metrics=self.metrics_registry)
            self._sampler.start(supervisor=self.supervisor)

    # -- tables ------------------------------------------------------------

    def create_table(self, name: str, num_columns: int, key_index: int = 0,
                     column_names: tuple[str, ...] | None = None,
                     config: EngineConfig | None = None) -> Table:
        """Create a table and attach it to the engine services."""
        if name in self.tables:
            raise SchemaMismatchError("table %r already exists" % name)
        schema = TableSchema(name=name, num_columns=num_columns,
                             key_index=key_index,
                             column_names=column_names or ())
        table = Table(schema, config if config is not None else self.config,
                      clock=self.clock, epoch_manager=self.epoch_manager,
                      txn_source=self.txn_manager,
                      metrics=self.metrics_registry)
        table.scan_executor = self.scan_executor
        table.admission = self._admission
        self.txn_manager.register_stamp_source(table.stamp_tail_markers)
        self.merge_engine.attach(table)
        if self._wal is not None:
            from ..wal.log import attach_table_logging
            attach_table_logging(self._wal, table)
        self.tables[name] = table
        return table

    def get_table(self, name: str) -> Table:
        """Return the table called *name*."""
        try:
            return self.tables[name]
        except KeyError:
            raise LStoreError("no table named %r" % name) from None

    def drop_table(self, name: str) -> None:
        """Drop the table called *name*."""
        table = self.tables.pop(name, None)
        if table is not None:
            # Release the auto-GC sweep's reference, or the dropped
            # table (pages, segments, indexes) stays alive and swept.
            self.txn_manager.unregister_stamp_source(
                table.stamp_tail_markers)

    def query(self, name: str) -> Query:
        """Auto-commit query handle for table *name*."""
        return Query(self.get_table(name))

    # -- transactions ------------------------------------------------------------

    def begin_transaction(
            self, *,
            isolation: IsolationLevel = IsolationLevel.READ_COMMITTED,
            deadline_seconds: float | None = None,
    ) -> Transaction:
        """Open a multi-statement transaction.

        *deadline_seconds* bounds its total lifetime: past it, any
        statement or commit aborts with
        :class:`~repro.errors.DeadlineExceeded`.
        """
        return Transaction(self.txn_manager, isolation=isolation,
                           deadline_seconds=deadline_seconds)

    # -- maintenance ------------------------------------------------------------

    def run_merges(self) -> int:
        """Drain the merge queue synchronously (deterministic mode)."""
        return self.merge_engine.run_pending()

    def compress_history(self) -> int:
        """Run the historic tail compression pass over every table."""
        from .compression import compress_historic_tails
        compressed = 0
        for table in self.tables.values():
            for update_range in table.sorted_ranges():
                compressed += compress_historic_tails(table, update_range)
        return compressed

    def checkpoint(self) -> "Any":
        """Write a checkpoint image so recovery replays only the suffix.

        Requires durability to be configured (``wal_enabled`` +
        ``data_dir``). Returns the
        :class:`~repro.wal.checkpoint.CheckpointResult`.
        """
        if self._wal is None:
            raise LStoreError("checkpoint requires wal_enabled + data_dir")
        from ..obs.trace import span
        from ..wal.checkpoint import write_checkpoint
        with span("wal.checkpoint"):
            return write_checkpoint(self)

    # -- observability -----------------------------------------------------

    def health(self) -> "Any":
        """Aggregate component states into one engine verdict.

        Returns a :class:`~repro.health.status.HealthReport`: OK,
        DEGRADED (merge restarting/stalled, backlog above a watermark,
        quarantined ranges, sampler dead — still serving correct
        answers), or FAILED (poisoned WAL, a supervised service past
        its restart budget) with per-component reasons. Also exported
        numerically as the ``health.state`` gauge.
        """
        return self._check_health(self)

    def metrics(self) -> dict[str, Any]:
        """Nested ``{domain: {metric: value}}`` snapshot of the engine.

        Label sets aggregate (per-table series sum); the ``recovery``
        domain reports the last :class:`~repro.wal.recovery.
        RecoveryReport` when this database came out of recovery.
        """
        snapshot: dict[str, Any] = self.metrics_registry.snapshot()
        report = self.recovery_report
        recovery: dict[str, Any] = {}
        if report is not None:
            recovery = {
                "records_total": report.records_total,
                "records_replayed": report.records_replayed,
                "records_skipped": report.records_skipped,
                "checkpoint_directory": report.checkpoint_directory,
                "checkpoint_lsn": report.checkpoint_lsn,
                "salvaged_bytes": report.salvaged_bytes,
                "quarantined_frames": len(report.quarantined),
                "segments": len(report.segments),
                "clean": report.clean,
            }
        snapshot["recovery"] = recovery
        if self._wal is not None:
            # Surface fail-stop poisoning *before* the first commit-time
            # WALError: the gauge says that, this says why.
            snapshot.setdefault("wal", {})["poison_reason"] = \
                self._wal.poison_reason
        return snapshot

    def render_metrics(self) -> str:
        """Prometheus exposition text of every registered instrument."""
        from ..obs.render import render_text
        return render_text(self.metrics_registry)

    def vacuum_indexes(self) -> int:
        """Vacuum deferred secondary-index entries on every table."""
        oldest = self.epoch_manager.oldest_active_begin()
        return sum(table.index.vacuum(oldest)
                   for table in self.tables.values())

    def close(self) -> None:
        """Stop background services and flush durability state."""
        if not self._open:
            return
        self.merge_engine.stop(drain=True)
        self.scan_executor.close()
        if self._sampler is not None:
            self._sampler.stop()
        self.supervisor.stop_all()
        if self._wal is not None:
            # close() flushes; a poisoned (fail-stopped) log closes
            # without raising — nothing more can be made durable.
            self._wal.close()
        self._open = False

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
