"""Start-time resolution and version-visibility predicates.

A Start Time cell holds either a real commit timestamp or a transaction
id behind the ``TXN_ID_FLAG`` marker (Section 5.1.1: the swap from txn
id to commit time is done lazily by readers). Resolving a cell therefore
may require consulting the transaction manager; the storage layer stays
decoupled from the concurrency layer through the tiny
:class:`TxnStateSource` protocol defined here.

Visibility predicates implement the paper's read rules:

* *latest committed* — read-committed statement-level reads;
* *as-of T* — snapshot-isolation reads at a begin time;
* *own-or-committed* — a transaction sees its own uncommitted writes;
* *speculative* — additionally sees pre-commit state writes ([18]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from .types import (TransactionState, is_txn_marker, txn_id_from_marker)


class TxnStateSource(Protocol):
    """What the storage layer needs to know about transactions."""

    def lookup(self, txn_id: int) -> tuple[TransactionState, int | None]:
        """Return (state, commit_time or None) for *txn_id*."""
        ...


@dataclass(frozen=True)
class ResolvedTime:
    """Outcome of resolving one Start Time cell."""

    #: True when the version is committed (commit time known).
    committed: bool
    #: Commit time (committed) / begin-less marker resolution, else None.
    time: int | None
    #: Writing transaction id when the cell still holds a marker.
    txn_id: int | None
    #: Transaction state for marker cells (None for plain timestamps).
    state: TransactionState | None = None


def resolve_start_cell(cell: int,
                       txn_source: TxnStateSource | None) -> ResolvedTime:
    """Resolve a Start Time *cell* into commit status and time."""
    if not is_txn_marker(cell):
        return ResolvedTime(committed=True, time=cell, txn_id=None)
    txn_id = txn_id_from_marker(cell)
    if txn_source is None:
        # No transaction manager: markers belong to vanished transactions
        # (e.g. pre-crash); treat as uncommitted.
        return ResolvedTime(committed=False, time=None, txn_id=txn_id)
    state, commit_time = txn_source.lookup(txn_id)
    if state is TransactionState.COMMITTED:
        return ResolvedTime(committed=True, time=commit_time, txn_id=txn_id,
                            state=state)
    return ResolvedTime(committed=False, time=None, txn_id=txn_id,
                        state=state)


#: A visibility predicate: resolved start time -> is this version visible?
VisibilityPredicate = Callable[[ResolvedTime], bool]


def visible_latest_committed(resolved: ResolvedTime) -> bool:
    """Latest-committed visibility (read committed)."""
    return resolved.committed


def visible_as_of(as_of: int, *,
                  settle_precommit: bool = False) -> VisibilityPredicate:
    """Snapshot visibility: committed with commit time <= *as_of*.

    *settle_precommit* marks the predicate for **read** paths: a
    transaction in the pre-commit state already owns its commit time,
    so whether its versions belong to the snapshot is decided but not
    yet observable — treating it as invisible while a record resolved
    a moment later sees it committed tears the snapshot (one leg of a
    transfer visible, the other not). Resolution sites then wait out
    the short validate→commit window
    (:meth:`~repro.core.table.Table.resolve_cell_settled`). Leave it
    False for OCC *validation* — a validating transaction is itself in
    pre-commit, and two validators settling on each other's markers
    would deadlock.
    """

    def predicate(resolved: ResolvedTime) -> bool:
        return resolved.committed and resolved.time is not None \
            and resolved.time <= as_of

    predicate.settle_precommit = settle_precommit
    return predicate


def visible_to_txn(txn_id: int,
                   base: VisibilityPredicate) -> VisibilityPredicate:
    """Own uncommitted writes are visible on top of *base* visibility."""

    def predicate(resolved: ResolvedTime) -> bool:
        if resolved.txn_id == txn_id \
                and resolved.state is not TransactionState.ABORTED:
            return True
        return base(resolved)

    predicate.settle_precommit = getattr(base, "settle_precommit", False)
    return predicate


def visible_speculative(base: VisibilityPredicate) -> VisibilityPredicate:
    """Speculative reads ([18]): pre-commit-state writes are also visible.

    "The speculative read ... allows reading updated/inserted records by
    those transactions that are in the pre-commit state" (Section 5.1.1).
    Never settles the pre-commit window — waiting it out would make the
    pre-commit state unobservable, which is the point of this read.
    """

    def predicate(resolved: ResolvedTime) -> bool:
        if resolved.state is TransactionState.PRE_COMMIT:
            return True
        return base(resolved)

    predicate.settle_precommit = False
    return predicate
