"""Schema Encoding column: per-record bitmap of updated data columns.

Section 2.2 of the paper: one bit per data column (metadata columns are
excluded); bit = 1 when the column has been updated. Tail records that
hold a *snapshot of the original values* — written on the first update
of a column to make outdated base pages safely discardable (Lemma 2) —
carry an extra flag rendered as an asterisk, e.g. ``0001*``.

The bitmap is stored as a plain int so it fits the 64-bit cell model of
the storage layer; the snapshot flag occupies one bit above the data
columns.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class SchemaEncoding:
    """Immutable bitmap over *num_columns* data columns plus a snapshot flag.

    The textual form matches the paper: most-significant data column
    first, e.g. ``SchemaEncoding.from_string("0101")`` flags columns 1
    and 3 of a 4-column table (0-indexed from the left, as in Table 2
    where columns are named A, B, C after the key).
    """

    __slots__ = ("num_columns", "_bits", "is_snapshot")

    def __init__(self, num_columns: int, bits: int = 0,
                 is_snapshot: bool = False) -> None:
        if num_columns < 0:
            raise ValueError("num_columns must be non-negative")
        if bits < 0 or bits >= (1 << num_columns):
            raise ValueError(
                "bits %r out of range for %d columns" % (bits, num_columns))
        self.num_columns = num_columns
        self._bits = bits
        self.is_snapshot = is_snapshot

    # -- constructors -------------------------------------------------

    @classmethod
    def empty(cls, num_columns: int) -> "SchemaEncoding":
        """All-zero encoding: no column ever updated."""
        return cls(num_columns, 0)

    @classmethod
    def from_columns(cls, num_columns: int, columns: Iterable[int],
                     is_snapshot: bool = False) -> "SchemaEncoding":
        """Encoding with the given 0-indexed *columns* flagged."""
        bits = 0
        for column in columns:
            if not 0 <= column < num_columns:
                raise ValueError(
                    "column %d out of range [0, %d)" % (column, num_columns))
            bits |= 1 << (num_columns - 1 - column)
        return cls(num_columns, bits, is_snapshot)

    @classmethod
    def from_string(cls, text: str) -> "SchemaEncoding":
        """Parse the paper's textual form, e.g. ``"0101"`` or ``"0001*"``."""
        is_snapshot = text.endswith("*")
        body = text[:-1] if is_snapshot else text
        if body and set(body) - {"0", "1"}:
            raise ValueError("invalid schema encoding string: %r" % text)
        return cls(len(body), int(body, 2) if body else 0, is_snapshot)

    @classmethod
    def from_int(cls, num_columns: int, value: int) -> "SchemaEncoding":
        """Decode the packed integer produced by :meth:`to_int`."""
        snapshot_bit = 1 << num_columns
        return cls(num_columns, value & (snapshot_bit - 1),
                   bool(value & snapshot_bit))

    # -- packed form ---------------------------------------------------

    def to_int(self) -> int:
        """Pack bitmap + snapshot flag into one int (storable in a cell)."""
        value = self._bits
        if self.is_snapshot:
            value |= 1 << self.num_columns
        return value

    # -- queries -------------------------------------------------------

    def is_updated(self, column: int) -> bool:
        """True when 0-indexed data *column* is flagged as updated."""
        if not 0 <= column < self.num_columns:
            raise ValueError(
                "column %d out of range [0, %d)" % (column, self.num_columns))
        return bool(self._bits & (1 << (self.num_columns - 1 - column)))

    def updated_columns(self) -> Iterator[int]:
        """Yield the 0-indexed flagged columns, ascending."""
        for column in range(self.num_columns):
            if self.is_updated(column):
                yield column

    @property
    def any_updated(self) -> bool:
        """True when at least one column is flagged."""
        return self._bits != 0

    # -- algebra ---------------------------------------------------------

    def with_column(self, column: int) -> "SchemaEncoding":
        """Return a copy with *column* additionally flagged."""
        if not 0 <= column < self.num_columns:
            raise ValueError(
                "column %d out of range [0, %d)" % (column, self.num_columns))
        return SchemaEncoding(
            self.num_columns,
            self._bits | (1 << (self.num_columns - 1 - column)),
            self.is_snapshot,
        )

    def union(self, other: "SchemaEncoding") -> "SchemaEncoding":
        """Bitwise OR of two encodings (snapshot flag is dropped).

        Used by the merge to populate the base-record Schema Encoding
        "to reflect all the columns that have been changed" (Step 3).
        """
        if other.num_columns != self.num_columns:
            raise ValueError("encodings cover different column counts")
        return SchemaEncoding(self.num_columns, self._bits | other._bits)

    def as_snapshot(self) -> "SchemaEncoding":
        """Return a copy carrying the snapshot (asterisk) flag."""
        return SchemaEncoding(self.num_columns, self._bits, True)

    def without_snapshot(self) -> "SchemaEncoding":
        """Return a copy with the snapshot flag cleared."""
        return SchemaEncoding(self.num_columns, self._bits, False)

    # -- dunder ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SchemaEncoding):
            return NotImplemented
        return (self.num_columns == other.num_columns
                and self._bits == other._bits
                and self.is_snapshot == other.is_snapshot)

    def __hash__(self) -> int:
        return hash((self.num_columns, self._bits, self.is_snapshot))

    def __str__(self) -> str:
        body = format(self._bits, "0%db" % self.num_columns) \
            if self.num_columns else ""
        return body + ("*" if self.is_snapshot else "")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SchemaEncoding(%r)" % str(self)
