"""The lineage-based table: update ranges, tail segments, read paths.

This module implements Sections 2 and 3 of the paper:

* records are virtually partitioned into fixed-size **update ranges**;
  each range owns append-only **tail pages** for its updates
  (:class:`TailSegment`);
* new records are appended through **insert ranges** whose actual data
  lives in *table-level tail pages* until a simplified merge materialises
  read-only base pages (Section 3.2, Table 3);
* every update appends a tail record; the first update of a column also
  appends a *snapshot* tail record holding the original value, which is
  what makes outdated base pages safely discardable (Lemma 2);
* the only in-place mutable word per record is the **Indirection**
  column, held in a CAS-only :class:`~repro.txn.latch.IndirectionVector`;
* reads reach the latest version in at most two hops via the indirection
  and the in-page TPS lineage (Section 4.2), and any historic version by
  walking the backpointer chain.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from ..errors import (DuplicateKeyError, InconsistentReadError,
                      KeyNotFoundError, RecordDeletedError,
                      SchemaMismatchError, StorageError, WriteWriteConflict)
from ..obs.registry import CounterStat, MetricsRegistry
from ..txn.latch import IndirectionVector
from ..analysis.locks import ENABLED as _LOCK_CHECK
from ..analysis.locks import guard_callback, make_lock
from ..txn.clock import SynchronizedClock
from .config import EngineConfig
from .encoding import SchemaEncoding
from .epoch import EpochManager
from .index import IndexManager
from .page import BytesPage, Page, RowPage, UNWRITTEN
from .page_directory import PageDirectory
from .rid import MonotonicCounter, RIDAllocator, TailBlock
from .schema import (BASE_RID_COLUMN, INDIRECTION_COLUMN, LAST_UPDATED_COLUMN,
                     NUM_METADATA_COLUMNS, SCHEMA_ENCODING_COLUMN,
                     START_TIME_COLUMN, TableSchema)
from .types import (NULL, NULL_RID, TXN_ID_FLAG, Layout, PageKind,
                    TransactionState, is_base_rid, is_null, is_tail_rid)
from .version import (ResolvedTime, TxnStateSource, VisibilityPredicate,
                      resolve_start_cell, visible_latest_committed)

#: Pseudo column index under which row-layout page chains are registered.
ROW_CHAIN_COLUMN = -1

#: The per-hop metadata cells every chain walk reads (batched).
_WALK_METADATA = (SCHEMA_ENCODING_COLUMN, START_TIME_COLUMN,
                  INDIRECTION_COLUMN)

#: Upper bound on how long a snapshot reader waits for a pre-commit
#: transaction to settle (seconds). The validate→commit window is
#: microseconds; the bound only matters for a transaction *abandoned*
#: in pre-commit (owner thread died mid-commit), where the reader
#: falls back to treating the outcome as undecided-and-invisible —
#: the pre-settling behaviour — instead of hanging the process.
#: Documented trade-off: a writer merely *paused* in pre-commit
#: longer than this (debugger, suspended VM) can again tear a
#: concurrent snapshot once it resumes; the bound is set generously
#: above any plausible validation time so only genuinely wedged
#: writers hit it.
PRECOMMIT_SETTLE_TIMEOUT = 30.0


def _settle_ticks() -> Iterator[None]:
    """Pacing generator for the pre-commit settle loops.

    Yields while the caller should re-probe the transaction state:
    pure GIL yields for the first beats (the common case resolves in
    microseconds), then a tiny sleep so a pack of waiting readers
    stops convoying the GIL against the very validator they wait for,
    all bounded by :data:`PRECOMMIT_SETTLE_TIMEOUT`. Exhaustion means
    the writer is wedged; callers fall back to undecided-is-invisible.
    """
    deadline = time.monotonic() + PRECOMMIT_SETTLE_TIMEOUT
    spins = 0
    while time.monotonic() <= deadline:
        time.sleep(0 if spins < 128 else 2e-5)
        spins += 1
        yield


class Deleted:
    """Singleton returned when the visible version of a record is a delete."""

    _instance: "Deleted | None" = None

    def __new__(cls) -> "Deleted":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<deleted>"


#: Marker: the record's visible version is a delete.
DELETED = Deleted()


@dataclass
class RangeColumnSlices:
    """Whole-range column slices for the vectorised scan plane.

    Produced by :meth:`Table.read_column_slices` for a clean merged
    columnar range: ``columns`` maps each requested data column to a
    ``(values, nulls)`` pair of NumPy arrays covering every range offset
    (``values`` is int64 with 0 at ∅ slots, ``nulls`` is True exactly
    there); ``valid`` marks the offsets whose base-page values are
    authoritative for a latest-committed read (live record, no unmerged
    tail activity, servable page); ``dirty`` lists the offsets a scan
    must instead patch through the per-record walk (unmerged tail
    records, pages that declined the NumPy view, Lemma-3 TPS
    mismatches). ``valid`` and ``dirty`` never overlap, and together
    they exclude tombstoned/deleted slots, so
    ``vectorised(valid) + row-walk(dirty)`` covers the range exactly.
    """

    start_rid: int
    size: int
    columns: dict[int, tuple[np.ndarray, np.ndarray]]
    valid: np.ndarray
    rids: np.ndarray
    dirty: list[int] = field(default_factory=list)


def tps_applied(tps_rid: int, tail_rid: int) -> bool:
    """True when the merge watermark *tps_rid* covers *tail_rid*.

    Tail RIDs descend over time, so a record is covered when its RID is
    *at least* the watermark (Section 4.4: "tail RIDs will be
    monotonically decreasing, and the TPS logic must be reversed").
    A NULL watermark covers nothing.
    """
    return tps_rid != NULL_RID and tail_rid >= tps_rid


class TailSegment:
    """Append-only, write-once tail storage for one update range.

    One instance serves either the *regular* tail pages of an update
    range or the *table-level* tail pages of an insert range (Section
    3.2 stresses both are structurally identical). Columns are allocated
    lazily — "a column that has never been updated does not even have to
    be materialized" — and reads of unmaterialised cells return the
    implicit special null ∅.
    """

    def __init__(self, *, range_id: int, layout: Layout, width: int,
                 page_capacity: int, block_size: int,
                 rid_allocator: RIDAllocator, page_counter: MonotonicCounter,
                 page_directory: PageDirectory,
                 kind: PageKind = PageKind.TAIL,
                 segment_ref: tuple[str, int] | None = None,
                 wal: Any | None = None,
                 latch_waits: Any | None = None,
                 page_class: type[Page] = Page) -> None:
        self.range_id = range_id
        #: WAL address of this segment: ("tail", range_id) for regular
        #: tails, ("insert", insert_range_index) for table-level tails.
        self.segment_ref = segment_ref if segment_ref is not None \
            else ("tail", range_id)
        self.wal = wal
        self.layout = layout
        self.width = width
        self.page_capacity = page_capacity
        self.block_size = block_size
        self.kind = kind
        #: Physical page layout for this segment's columns: the
        #: byte-buffer :class:`~repro.core.page.BytesPage` by default,
        #: the object-list :class:`~repro.core.page.Page` when the
        #: engine runs with ``bytes_pages=False`` (semantics oracle).
        self._page_class = page_class
        self._rid_allocator = rid_allocator
        self._page_counter = page_counter
        self._page_directory = page_directory
        #: Contested block-latch acquisitions (obs counter or None).
        self._latch_waits = latch_waits
        self._lock = make_lock("segment.alloc")
        self._blocks: list[tuple[int, TailBlock]] = []
        self._pages: dict[int, list[Page]] = {}
        self._row_pages: list[RowPage] = []
        self._tombstones: set[int] = set()
        #: Historic compression (Section 4.3): parts replace raw pages
        #: for offsets below ``compressed_upto``.
        self.compressed_parts: list[Any] = []
        self.compressed_upto = 0
        #: Lazily-stamped prefix: every Start Time cell below this
        #: offset holds a plain commit time (or belongs to an aborted
        #: record), never an unresolved transaction marker — advanced by
        #: :meth:`Table.stamp_tail_markers` for the auto-GC sweep.
        self.stamped_upto = 0

    # -- RID / offset bookkeeping ------------------------------------------

    def allocate(self) -> tuple[int, int]:
        """Reserve the next tail RID; return ``(rid, offset)``.

        Offsets increase in allocation order while RIDs decrease, so tail
        slots stay append-only (Section 4.4).
        """
        while True:
            blocks = self._blocks
            if blocks:
                base_offset, block = blocks[-1]
                rid = block.allocate()
                if rid is not None:
                    return rid, base_offset + block.offset_of(rid)
            if not self._lock.acquire(False):
                if self._latch_waits is not None:
                    self._latch_waits.add()
                self._lock.acquire()
            try:
                # Re-check under the lock: a racing thread may have
                # extended the block list already.
                if not self._blocks or self._blocks[-1][1].exhausted:
                    next_offset = self.num_reserved_slots()
                    block = self._rid_allocator.reserve_tail_block(
                        self.block_size)
                    self._blocks = self._blocks + [(next_offset, block)]
                    if self.wal is not None \
                            and self.segment_ref[0] == "tail":
                        self.wal.tail_block_reserved(
                            self.range_id, block.start_rid, block.size)
            finally:
                self._lock.release()

    def allocate_pair(self) -> tuple[int, int, int, int]:
        """Reserve two consecutive tail slots in one latch hold.

        Returns ``(first_rid, first_offset, second_rid,
        second_offset)`` with the first slot older (lower offset) than
        the second — the fused snapshot+update append writes the
        Lemma-2 snapshot record into the first and the update record
        into the second, paying one block-latch acquisition instead of
        two. Falls back to two single allocations at a block boundary
        (the pair may then span blocks; offsets still ascend).
        """
        blocks = self._blocks
        if blocks:
            base_offset, block = blocks[-1]
            pair = block.allocate_pair()
            if pair is not None:
                first, second = pair
                first_offset = base_offset + block.offset_of(first)
                return first, first_offset, second, first_offset + 1
        first, first_offset = self.allocate()
        second, second_offset = self.allocate()
        return first, first_offset, second, second_offset

    def adopt_block(self, block: TailBlock) -> None:
        """Install a pre-reserved *block* (aligned insert segments)."""
        with self._lock:
            next_offset = self.num_reserved_slots()
            self._blocks = self._blocks + [(next_offset, block)]

    def num_reserved_slots(self) -> int:
        """Total slots covered by all blocks."""
        return sum(block.size for _, block in self._blocks)

    def num_allocated(self) -> int:
        """Total RIDs handed out so far (time-ordered offsets)."""
        return sum(block.used for _, block in self._blocks)

    def contains_rid(self, rid: int) -> bool:
        """True when *rid* belongs to one of this segment's blocks."""
        return any(block.contains(rid) for _, block in self._blocks)

    def locate(self, rid: int) -> int:
        """Offset of *rid* within the segment."""
        for base_offset, block in self._blocks:
            if block.contains(rid):
                return base_offset + block.offset_of(rid)
        raise StorageError("rid %d not in tail segment of range %d"
                           % (rid, self.range_id))

    def try_locate(self, rid: int) -> int | None:
        """Offset of *rid*, or None when it is not in this segment.

        Fused ``contains_rid`` + ``locate`` for the chain-walk hot
        paths: one pass over the block list, the range arithmetic done
        inline instead of through two method calls per block.
        """
        for base_offset, block in self._blocks:
            delta = block.start_rid - rid
            if 0 <= delta < block.size:
                return base_offset + delta
        return None

    def rid_at(self, offset: int) -> int:
        """Inverse of :meth:`locate`."""
        for base_offset, block in self._blocks:
            if base_offset <= offset < base_offset + block.size:
                return block.rid_at(offset - base_offset)
        raise StorageError("offset %d not reserved in range %d"
                           % (offset, self.range_id))

    # -- tombstones -------------------------------------------------------

    def mark_tombstone(self, offset: int) -> None:
        """Invalidate the record at *offset* (aborted transaction)."""
        with self._lock:
            self._tombstones.add(offset)

    def is_tombstone(self, offset: int) -> bool:
        """True when the record at *offset* was aborted."""
        if offset < self.compressed_upto:
            part = self._part_for(offset)
            if part is not None:
                return part.is_tombstone(offset)
        return offset in self._tombstones

    # -- historic compression hooks ------------------------------------------

    def _part_for(self, offset: int) -> Any | None:
        for part in self.compressed_parts:
            if part.covers(offset):
                return part
        return None

    def install_compressed_part(self, part: Any) -> None:
        """Replace raw pages with a :class:`CompressedTailPart`.

        Reclaims the tombstone set for the covered region ("the space is
        not reclaimed until the compression phase", Section 5.1.3).
        """
        with self._lock:
            self.compressed_parts.append(part)
            self.compressed_upto = max(self.compressed_upto,
                                       part.end_offset)
            self._tombstones = {
                offset for offset in self._tombstones
                if not part.covers(offset)
            }

    # -- columnar IO -------------------------------------------------------

    def _page_for_write(self, column: int, page_index: int) -> Page:
        pages = self._pages.get(column)
        if pages is None or page_index >= len(pages):
            with self._lock:
                pages = self._pages.setdefault(column, [])
                while page_index >= len(pages):
                    page = self._page_class(
                        self._page_counter.next(), self.kind,
                        self.page_capacity, column)
                    self._page_directory.register(page)
                    pages.append(page)
        return self._pages[column][page_index]

    def write_cell(self, offset: int, column: int, value: Any) -> None:
        """Write one cell (write-once) at *offset* for *column*."""
        page = self._page_for_write(column, offset // self.page_capacity)
        page.write_slot(offset % self.page_capacity, value)

    def has_value(self, offset: int, column: int) -> bool:
        """True when the cell was explicitly written."""
        pages = self._pages.get(column)
        if pages is None:
            return False
        page_index = offset // self.page_capacity
        if page_index >= len(pages):
            return False
        return pages[page_index].is_written(offset % self.page_capacity)

    def read_cell(self, offset: int, column: int) -> Any:
        """Read one cell; unmaterialised cells are the implicit ∅.

        One :meth:`~repro.core.page.Page.peek_slot` dispatch instead of
        an ``is_written`` + ``read_slot`` pair — the chain-walk hot
        paths read a handful of cells per hop, and on byte-buffer pages
        the fused probe also pays the bitmap arithmetic once.
        """
        pages = self._pages.get(column)
        if pages is None:
            return NULL
        page_index = offset // self.page_capacity
        if page_index >= len(pages):
            return NULL
        value = pages[page_index].peek_slot(offset % self.page_capacity)
        return NULL if value is UNWRITTEN else value

    def replace_cell(self, offset: int, column: int, expected: Any,
                     value: Any) -> bool:
        """Refine a cell in place (lazy commit-time stamping only)."""
        pages = self._pages.get(column)
        if pages is None:
            return False
        page = pages[offset // self.page_capacity]
        return page.replace_slot(offset % self.page_capacity,
                                 expected, value)

    def replace_record_cell(self, offset: int, column: int, expected: Any,
                            value: Any) -> bool:
        """Layout-independent in-place cell refinement (lazy stamping).

        Columnar records refine the raw page slot; row-layout records
        refine through :meth:`~repro.core.page.RowPage.refine_cell`
        (replacing the immutable row tuple atomically). Compressed
        regions store resolved times only and are never refined.
        """
        if offset < self.compressed_upto:
            return False
        if self.layout is Layout.ROW:
            page_index, slot = divmod(offset, self.page_capacity)
            if page_index >= len(self._row_pages):
                return False
            return self._row_pages[page_index].refine_cell(
                slot, column, expected, value)
        return self.replace_cell(offset, column, expected, value)

    # -- row IO -------------------------------------------------------------

    def _row_page_for_write(self, page_index: int) -> RowPage:
        if page_index >= len(self._row_pages):
            with self._lock:
                while page_index >= len(self._row_pages):
                    page = RowPage(self._page_counter.next(), self.kind,
                                   self.page_capacity, self.width)
                    self._page_directory.register(page)
                    self._row_pages.append(page)
        return self._row_pages[page_index]

    def write_row(self, offset: int, row: Sequence[Any]) -> None:
        """Row-layout: write the full physical row at *offset*."""
        page = self._row_page_for_write(offset // self.page_capacity)
        page.write_row(offset % self.page_capacity, row)

    def read_row_cell(self, offset: int, column: int) -> Any:
        """Row-layout: read one cell of the row at *offset*."""
        page_index = offset // self.page_capacity
        if page_index >= len(self._row_pages):
            return NULL
        page = self._row_pages[page_index]
        slot = offset % self.page_capacity
        if not page.is_written(slot):
            return NULL
        return page.read_cell(slot, column)

    def row_written(self, offset: int) -> bool:
        """Row-layout: True when the row at *offset* was written."""
        page_index = offset // self.page_capacity
        return page_index < len(self._row_pages) \
            and self._row_pages[page_index].is_written(
                offset % self.page_capacity)

    # -- unified record IO ---------------------------------------------------

    def write_record(self, offset: int, cells: dict[int, Any]) -> None:
        """Write a tail record: metadata + materialised data cells.

        Columnar layout writes each provided column; row layout expands
        to a full-width row with ∅ for unmaterialised columns.
        """
        if self.wal is not None:
            self.wal.record_written(self.segment_ref, offset, cells)
        if self.layout is Layout.ROW:
            row = [NULL] * self.width
            for column, value in cells.items():
                row[column] = value
            self.write_row(offset, row)
        else:
            capacity = self.page_capacity
            page_index = offset // capacity
            slot = offset % capacity
            pages_map = self._pages
            for column, value in cells.items():
                pages = pages_map.get(column)
                if pages is None or page_index >= len(pages):
                    self._page_for_write(column, page_index)
                    pages = pages_map[column]
                pages[page_index].write_slot(slot, value)

    def write_record_flat(self, offset: int, physicals: Sequence[int],
                          values: Sequence[Any]) -> None:
        """Write a tail record from parallel column/value sequences.

        The dict-free analogue of :meth:`write_record` — the OLTP
        append hot path. *physicals* and *values* pair up positionally;
        a cells dict is materialised only when a WAL adapter needs the
        redo image. Columnar layout writes each cell through the lean
        exclusively-owned-slot page write; row layout expands to a
        full-width row exactly like the dict path.
        """
        if self.wal is not None:
            self.wal.record_written(self.segment_ref, offset,
                                    dict(zip(physicals, values)))
        self._write_cells_flat(offset, physicals, values)

    def _write_cells_flat(self, offset: int, physicals: Sequence[int],
                          values: Sequence[Any]) -> None:
        if self.layout is Layout.ROW:
            row = [NULL] * self.width
            for column, value in zip(physicals, values):
                row[column] = value
            self.write_row(offset, row)
            return
        capacity = self.page_capacity
        page_index, slot = divmod(offset, capacity)
        pages_map = self._pages
        for column, value in zip(physicals, values):
            pages = pages_map.get(column)
            if pages is None or page_index >= len(pages):
                self._page_for_write(column, page_index)
                pages = pages_map[column]
            pages[page_index].write_slot_fast(slot, value)

    def write_record_pair_flat(self, snap_offset: int,
                               snap_cells: dict[int, Any],
                               offset: int, physicals: Sequence[int],
                               values: Sequence[Any]) -> None:
        """Write an adjacent snapshot+update record pair in one pass.

        The fused Lemma-2 append: *snap_cells* (physical → value) is
        the snapshot record at *snap_offset*, whose column set is
        always a subset of the update record's *physicals* (snapshot
        columns are first-updated columns of this very update, and the
        four tail metadata columns are shared) — so one traversal of
        the update record's columns serves both records, shared-column
        cells written through a single page-lock hold. Falls back to
        two flat writes when the slots land on different pages or the
        layout is row.
        """
        if self.wal is not None:
            self.wal.record_written(self.segment_ref, snap_offset,
                                    dict(snap_cells))
            self.wal.record_written(self.segment_ref, offset,
                                    dict(zip(physicals, values)))
        capacity = self.page_capacity
        if self.layout is Layout.ROW \
                or offset != snap_offset + 1 \
                or offset % capacity == 0:
            self._write_cells_flat(snap_offset, list(snap_cells),
                                   list(snap_cells.values()))
            self._write_cells_flat(offset, physicals, values)
            return
        page_index, slot = divmod(offset, capacity)
        snap_slot = slot - 1
        pages_map = self._pages
        missing = UNWRITTEN
        snap_get = snap_cells.get
        for column, value in zip(physicals, values):
            pages = pages_map.get(column)
            if pages is None or page_index >= len(pages):
                self._page_for_write(column, page_index)
                pages = pages_map[column]
            page = pages[page_index]
            snap_value = snap_get(column, missing)
            if snap_value is missing:
                page.write_slot_fast(slot, value)
            else:
                page.write_slot_pair_fast(snap_slot, snap_value,
                                          slot, value)

    def record_cell(self, offset: int, column: int) -> Any:
        """Read one cell of the record at *offset*."""
        if offset < self.compressed_upto:
            part = self._part_for(offset)
            if part is not None:
                return part.record_cell(offset, column, self.rid_at)
        if self.layout is Layout.ROW:
            return self.read_row_cell(offset, column)
        return self.read_cell(offset, column)

    def record_cells(self, offset: int,
                     columns: Sequence[int]) -> list[Any]:
        """Batched :meth:`record_cell`: one dispatch for N cells.

        The chain-walk hot paths read two or three metadata cells per
        hop; paying the compressed-region and layout dispatch (plus the
        page-index arithmetic) once per record instead of once per cell
        keeps the 2-hop read guarantee cheap. Unmaterialised cells are
        ∅, like :meth:`record_cell`.
        """
        if offset < self.compressed_upto and self._part_for(offset):
            return [self.record_cell(offset, column) for column in columns]
        if self.layout is Layout.ROW:
            return [self.read_row_cell(offset, column)
                    for column in columns]
        pages_map = self._pages
        page_index, slot = divmod(offset, self.page_capacity)
        cells: list[Any] = []
        for column in columns:
            pages = pages_map.get(column)
            if pages is None or page_index >= len(pages):
                cells.append(NULL)
                continue
            value = pages[page_index].peek_slot(slot)
            cells.append(NULL if value is UNWRITTEN else value)
        return cells

    def record_written(self, offset: int) -> bool:
        """True when the record at *offset* is (at least partially) written.

        The Start Time cell is written by every record, so its presence
        marks the record as materialised.
        """
        if offset < self.compressed_upto and self._part_for(offset):
            return True
        if self.layout is Layout.ROW:
            return self.row_written(offset)
        return self.has_value(offset, START_TIME_COLUMN)

    # -- page enumeration (merge / compression / epoch) -------------------------

    def pages_for_column(self, column: int) -> list[Page]:
        """Snapshot of the pages materialised for *column*."""
        with self._lock:
            return list(self._pages.get(column, []))

    def materialized_columns(self) -> list[int]:
        """Columns with at least one tail page."""
        with self._lock:
            return list(self._pages.keys())

    def row_pages(self) -> list[RowPage]:
        """Snapshot of the row-layout pages (batched row reads)."""
        with self._lock:
            return list(self._row_pages)

    def all_pages(self) -> list[Page | RowPage]:
        """Every page of the segment (epoch retirement of insert tails)."""
        with self._lock:
            pages: list[Page | RowPage] = []
            for page_list in self._pages.values():
                pages.extend(page_list)
            pages.extend(self._row_pages)
            return pages

    def iter_base_rids(self, since_offset: int = 0,
                       until_offset: int | None = None,
                       ) -> Iterator[tuple[int, int]]:
        """Yield ``(offset, base_rid)`` for written records in order.

        Public accessor for the scan patch-set and merge bookkeeping:
        covers ``[since_offset, until_offset or num_allocated())``,
        skipping unwritten slots. The columnar fast path walks the Base
        RID column pages directly; compressed regions and the row layout
        fall back to :meth:`record_cell`.
        """
        limit = self.num_allocated() if until_offset is None \
            else min(until_offset, self.num_allocated())
        if self.layout is not Layout.ROW \
                and since_offset >= self.compressed_upto:
            capacity = self.page_capacity
            with self._lock:
                pages = list(self._pages.get(BASE_RID_COLUMN, []))
            for offset in range(since_offset, limit):
                page_index = offset // capacity
                if page_index >= len(pages):
                    break
                value = pages[page_index].peek_slot(offset % capacity)
                if type(value) is int:
                    yield offset, value
            return
        for offset in range(since_offset, limit):
            if not self.record_written(offset):
                continue
            base_rid = self.record_cell(offset, BASE_RID_COLUMN)
            if is_null(base_rid):
                continue
            yield offset, base_rid

    def pages_for_slots(self, first_offset: int,
                        last_offset: int) -> list[Page | RowPage]:
        """Pages fully covered by ``[first_offset, last_offset)``."""
        first_page = first_offset // self.page_capacity
        last_page = last_offset // self.page_capacity
        result: list[Page | RowPage] = []
        with self._lock:
            for page_list in self._pages.values():
                result.extend(page_list[first_page:last_page])
            result.extend(self._row_pages[first_page:last_page])
        return result


class InsertRange:
    """A pre-allocated block of base RIDs plus its table-level tail pages.

    Section 3.2: base RIDs and table-level tail RIDs are reserved in
    equal, aligned sets so the i-th base RID maps to the i-th tail slot.
    The only materialised base column before the insert merge is the
    Indirection column (owned by the covering :class:`UpdateRange`\\ s).
    """

    def __init__(self, start_rid: int, size: int,
                 segment: TailSegment) -> None:
        self.start_rid = start_rid
        self.size = size
        self.segment = segment
        self._allocated = 0
        self._lock = make_lock("insert.alloc")

    def allocate_slot(self) -> int | None:
        """Reserve the next aligned offset, or None when full."""
        with self._lock:
            if self._allocated >= self.size:
                return None
            offset = self._allocated
            self._allocated += 1
            return offset

    @property
    def allocated(self) -> int:
        """Number of base RIDs handed out."""
        with self._lock:
            return self._allocated

    @property
    def is_full(self) -> bool:
        """True when every slot is reserved."""
        return self.allocated >= self.size

    def offset_of(self, rid: int) -> int:
        """Offset of base RID *rid* within this insert range."""
        if not self.start_rid <= rid < self.start_rid + self.size:
            raise StorageError("rid %d outside insert range" % rid)
        return rid - self.start_rid


class UpdateRange:
    """One virtual update-range partition of a table (Section 2.1).

    Owns the in-place-updatable Indirection vector, the lazily created
    regular tail segment, and the merge lineage watermarks. Base data
    lives either in the parent insert range's table-level tails (before
    the insert merge) or in read-only base/merged page chains registered
    in the page directory.
    """

    def __init__(self, range_id: int, start_rid: int, size: int,
                 insert_range: InsertRange) -> None:
        self.range_id = range_id
        self.start_rid = start_rid
        self.size = size
        self.insert_range = insert_range
        self.indirection = IndirectionVector(size)
        #: Per-record bitmap of data columns ever updated (write-latch
        #: protected; the paper's optional base-record Schema Encoding
        #: maintained "as part of the update process").
        self.updated_bits = [0] * size
        self.tail: TailSegment | None = None
        #: True once base pages exist (insert merge done).
        self.merged = False
        #: Base offsets whose insert aborted (holes in merged pages).
        self.base_tombstones: set[int] = set()
        #: Next regular-tail offset the merge will consume.
        self.merged_upto = 0
        #: Range-level TPS: RID of the newest merged tail record.
        self.tps_rid = NULL_RID
        self.merge_count = 0
        self._tail_lock = make_lock("range.tail")
        #: Incrementally maintained scan patch-set: range offset →
        #: number of unmerged tail records for that record. Incremented
        #: on every tail append, decremented when the merge consumes the
        #: record's tail prefix — so ``dirty_offsets()`` is always a
        #: superset of the records whose base pages are stale, and scan
        #: cost tracks the unmerged-update count (Figure 8).
        self.dirty_counts: dict[int, int] = {}
        #: Companion bitmap: range offset → OR of the data-column bits
        #: its unmerged tail records may have changed (deletes and
        #: unknown provenance count as all-columns). A single-column
        #: scan only needs to patch a dirty record when the scanned
        #: column's bit is set — every other dirty record's base value
        #: is still current under cumulative updates — which cuts the
        #: per-scan patch walks to the records that actually moved.
        #: Maintained with ``dirty_counts`` under the same lock;
        #: dropped when the count returns to zero, so the bits only
        #: ever over-approximate.
        self.dirty_bits: dict[int, int] = {}
        self._dirty_lock = make_lock("range.dirty")
        #: Version-horizon summary of the *unmerged* tail: a lower
        #: bound on the commit time of every unmerged regular tail
        #: record (None = no unmerged regular records). Maintained
        #: under ``_dirty_lock`` by :meth:`note_horizon` on every
        #: append and rebuilt by the merge once a prefix is consumed;
        #: a snapshot-scan at time T with ``T < unmerged_min_time``
        #: knows no unmerged update can be visible at T.
        self.unmerged_min_time: int | None = None
        #: Version-horizon summary of the merged content: the largest
        #: commit time consolidated into the base pages (insert times
        #: and merged update/delete times). A snapshot-scan at time T
        #: with ``T >= merged_max_time`` knows every base-page value
        #: is old enough to be visible at T.
        self.merged_max_time = 0
        #: Vectorised-scan slice cache: data column → ``(chain, values,
        #: nulls, declined)``. A chain is an immutable page tuple the
        #: merge swaps atomically, so identity captures every value
        #: change; entries rebuild lazily on the first scan after a
        #: swap and the arrays are shared read-only across scans.
        self.slice_cache: dict[int, tuple] = {}
        #: Reader chain cache: ``(directory_version, [chain per
        #: physical column])`` — see :meth:`Table.range_chains`.
        self.reader_chains: tuple[int, list] | None = None
        self._rid_array: Any = None
        #: Set while the range sits in the merge queue (dedup).
        self.merge_pending = False
        self.lock = make_lock("range.watermark")
        #: Serialises merges of this range (the paper runs one merge
        #: thread; this keeps direct merge calls safe alongside it).
        self.merge_lock = make_lock("range.merge")

    def insert_offset(self, offset: int) -> int:
        """Translate a range offset into the parent insert-range offset."""
        return (self.start_rid - self.insert_range.start_rid) + offset

    def ensure_tail(self, factory: Callable[[], TailSegment]) -> TailSegment:
        """Lazily create the regular tail segment (Section 3.1)."""
        tail = self.tail
        if tail is None:
            with self._tail_lock:
                if self.tail is None:
                    self.tail = factory()
                tail = self.tail
        return tail

    def locate_tail(self, rid: int) -> tuple[TailSegment, int]:
        """Locate a tail RID in the regular or table-level segment."""
        tail = self.tail
        if tail is not None:
            offset = tail.try_locate(rid)
            if offset is not None:
                return tail, offset
        segment = self.insert_range.segment
        offset = segment.try_locate(rid)
        if offset is not None:
            return segment, offset
        raise StorageError("tail rid %d not found in range %d"
                           % (rid, self.range_id))

    def unmerged_tail_count(self) -> int:
        """Tail records appended but not yet consolidated."""
        tail = self.tail
        if tail is None:
            return 0
        return max(0, tail.num_allocated() - self.merged_upto)

    # -- incremental scan patch-set ----------------------------------------

    def note_tail_append(self, offset: int) -> None:
        """Count one unmerged tail record for the record at *offset*.

        Called *before* the tail record's cells are written, so a merge
        that observes the written record is guaranteed to see (and later
        prune) its dirty count. Provenance unknown at this interface:
        the column bitmap is set to all-columns (conservative).
        """
        with self._dirty_lock:
            counts = self.dirty_counts
            counts[offset] = counts.get(offset, 0) + 1
            self.dirty_bits[offset] = -1

    def note_tail_appends(self, offset: int, count: int,
                          time_lower_bound: int | None = None,
                          column_bits: int = -1) -> None:
        """Fused patch-set + horizon bookkeeping for *count* appends.

        One dirty-lock acquisition covers what
        :meth:`note_tail_append` (per record) plus :meth:`note_horizon`
        would take two or three for — the flat append path notes the
        snapshot and update records of one write together, before any
        cell is written (same ordering guarantee as
        :meth:`note_tail_append`). *time_lower_bound* is None when no
        regular record is among the appends (pure snapshot bookkeeping
        carries no version).
        """
        with self._dirty_lock:
            counts = self.dirty_counts
            counts[offset] = counts.get(offset, 0) + count
            bits = self.dirty_bits
            bits[offset] = bits.get(offset, 0) | column_bits
            if time_lower_bound is not None:
                current = self.unmerged_min_time
                if current is None or time_lower_bound < current:
                    self.unmerged_min_time = time_lower_bound

    def prune_dirty(self, offsets: Iterator[int] | list[int]) -> None:
        """Release dirty counts for tail records a merge consumed."""
        with self._dirty_lock:
            counts = self.dirty_counts
            bits = self.dirty_bits
            for offset in offsets:
                count = counts.get(offset)
                if count is None:
                    continue
                if count <= 1:
                    del counts[offset]
                    bits.pop(offset, None)
                else:
                    counts[offset] = count - 1

    def dirty_offsets(self) -> set[int]:
        """Snapshot of offsets with at least one unmerged tail record."""
        with self._dirty_lock:
            return set(self.dirty_counts)

    def dirty_offsets_for_column(self, column_bit: int) -> list[int]:
        """Dirty offsets whose unmerged tail may have changed *column*.

        The single-column scan patch-set: offsets whose column bitmap
        misses *column_bit* are skipped entirely — under cumulative
        updates their base value is still the latest committed one, so
        neither a subtraction nor a walk is owed. Always a subset of
        :meth:`dirty_offsets`; the bitmap over-approximates (deletes
        and unknown provenance read as all-columns), so skipping is
        safe.
        """
        with self._dirty_lock:
            return [offset for offset, bits in self.dirty_bits.items()
                    if bits & column_bit]

    # -- version-horizon summary -------------------------------------------

    def note_horizon(self, time_lower_bound: int) -> None:
        """Fold one unmerged regular tail record into the horizon.

        *time_lower_bound* is a value known not to exceed the record's
        eventual commit time: the start cell itself for auto-commit
        writes, the current clock reading for transaction markers
        (commit times are drawn from the monotonic clock strictly
        after the append). Snapshot records carry no version and are
        never noted.
        """
        with self._dirty_lock:
            current = self.unmerged_min_time
            if current is None or time_lower_bound < current:
                self.unmerged_min_time = time_lower_bound

    def set_unmerged_horizon(self, minimum: int | None) -> None:
        """Install the recomputed unmerged horizon (merge / recovery)."""
        with self._dirty_lock:
            self.unmerged_min_time = minimum

    def horizon_snapshot(self) -> tuple[set[int], int | None, int]:
        """Atomic ``(dirty offsets, unmerged horizon, merged horizon)``.

        One lock acquisition so a snapshot scan classifies against a
        patch-set and the horizon that belong to the same instant.
        """
        with self._dirty_lock:
            return (set(self.dirty_counts), self.unmerged_min_time,
                    self.merged_max_time)

    def rid_array(self) -> Any:
        """Cached int64 array of this range's base RIDs (scan plane)."""
        rids = self._rid_array
        if rids is None:
            rids = np.arange(self.start_rid, self.start_rid + self.size,
                             dtype=np.int64)
            self._rid_array = rids
        return rids


class Table:
    """One L-Store table: the public storage-level API.

    Higher layers compose on top: :class:`~repro.core.query.Query` for
    statement-style access and :mod:`repro.txn.occ` for multi-statement
    transactions. The granular latch/append/install primitives exist so
    the OCC layer can interleave conflict detection exactly as the paper
    prescribes (Section 5.1.1, *write w(x)*).
    """

    def __init__(self, schema: TableSchema, config: EngineConfig, *,
                 clock: SynchronizedClock | None = None,
                 epoch_manager: EpochManager | None = None,
                 txn_source: TxnStateSource | None = None,
                 snapshot_on_delete: bool = True,
                 metrics: MetricsRegistry | None = None) -> None:
        self.schema = schema
        self.config = config
        self.clock = clock if clock is not None else SynchronizedClock()
        self.epoch_manager = epoch_manager if epoch_manager is not None \
            else EpochManager()
        self.txn_source = txn_source
        #: Snapshot never-updated columns before a delete so historic
        #: reads survive the merge (Section 3.1's "alternative design";
        #: turn off to reproduce the paper's Table 2 byte-for-byte).
        self.snapshot_on_delete = snapshot_on_delete
        self.page_directory = PageDirectory()
        self.rid_allocator = RIDAllocator()
        self.index = IndexManager(schema, config)
        self.page_counter = MonotonicCounter()
        self.ranges: dict[int, UpdateRange] = {}
        self.insert_ranges: list[InsertRange] = []
        self._insert_lock = make_lock("table.insert")
        self._range_lock = make_lock("table.ranges")
        #: Callback the merge engine installs: fn(table, range_id, kind).
        self.merge_notifier: Callable[["Table", int, str], None] | None = None
        #: Admission controller the Database installs when backlog
        #: watermarks are configured (:mod:`repro.health.backpressure`).
        #: None (the default) keeps the write path zero-cost: one
        #: attribute load + is-None test per write, benchmark-guarded.
        self.admission: Any | None = None
        #: Optional write-ahead-log adapter (see repro.wal.log.TableWAL).
        self.wal: Any | None = None
        # Statistics: registry counters, striped per thread so the
        # write path never contends on a stat mutex. The Database
        # shares its registry; standalone tables get a private one.
        if metrics is None:
            metrics = MetricsRegistry(enabled=config.obs_metrics)
        self.metrics = metrics
        labels = {"table": schema.name}
        self._stat_inserts = metrics.counter(
            "write.inserts", labels=labels,
            help="Base records appended through the insert path")
        self._stat_updates = metrics.counter(
            "write.updates", labels=labels,
            help="Update tail records appended")
        self._stat_deletes = metrics.counter(
            "write.deletes", labels=labels,
            help="Delete tail records appended")
        self._stat_aborted_tails = metrics.counter(
            "write.aborted_tails", labels=labels,
            help="Tail records tombstoned by aborts")
        self._stat_flat_appends = metrics.counter(
            "write.flat_appends", labels=labels,
            help="Appends served by the fused flat-cell write path")
        self._stat_latch_waits = metrics.counter(
            "write.latch_waits", labels=labels,
            help="Contested tail block-latch acquisitions")
        self._stat_ww_conflicts = metrics.counter(
            "txn.ww_conflicts", labels=labels,
            help="Write-write conflicts detected on the latch/walk path")
        self._stat_deleted_conflicts = metrics.counter(
            "txn.deleted_conflicts", labels=labels,
            help="Writes rejected because the record was deleted")
        self._stat_scan_vectorized = metrics.counter(
            "scan.partitions_vectorized", labels=labels,
            help="Scan partitions served on the vectorised slice plane")
        self._stat_scan_version = metrics.counter(
            "scan.partitions_version", labels=labels,
            help="Scan partitions served on the version-horizon plane")
        self._stat_scan_row = metrics.counter(
            "scan.partitions_row", labels=labels,
            help="Scan partitions served on the per-record row plane")
        self._stat_plane_degradations = metrics.counter(
            "scan.plane_degradations", labels=labels,
            help="Partitions degraded from the vectorised plane by the "
                 "dirty-fraction threshold")
        self._stat_slice_hits = metrics.counter(
            "scan.slice_cache_hits", labels=labels,
            help="Column-slice cache hits")
        self._stat_slice_misses = metrics.counter(
            "scan.slice_cache_misses", labels=labels,
            help="Column-slice cache misses (slice stitched fresh)")
        self._layout = config.layout
        self._records_per_page = config.records_per_page
        self._range_size = config.update_range_size
        self._key_physical = NUM_METADATA_COLUMNS + schema.key_index
        #: Memo: Schema Encoding bits → ascending data-column tuple
        #: (at most 2**num_columns entries, built on demand) — the
        #: append and cumulation paths decode bitmaps constantly.
        self._bit_columns: dict[int, tuple[int, ...]] = {}
        #: Shared analytical scan executor; the Database installs its
        #: shared instance, standalone tables lazily create their own.
        self._scan_executor: Any | None = None

    # ------------------------------------------------------------------
    # Statistics (registry-backed aliases; fold of the striped cells)
    # ------------------------------------------------------------------

    stat_inserts = CounterStat(
        "_stat_inserts", "Committed-or-pending inserts.")
    stat_updates = CounterStat(
        "_stat_updates", "Update tail records appended.")
    stat_deletes = CounterStat(
        "_stat_deletes", "Delete tail records appended.")
    stat_aborted_tails = CounterStat(
        "_stat_aborted_tails", "Tail records tombstoned by aborts.")
    stat_flat_appends = CounterStat(
        "_stat_flat_appends", "Flat-cell fused appends.")
    stat_latch_waits = CounterStat(
        "_stat_latch_waits", "Contested tail block-latch acquisitions.")
    stat_ww_conflicts = CounterStat(
        "_stat_ww_conflicts", "Write-write conflicts detected.")
    stat_slice_cache_hits = CounterStat(
        "_stat_slice_hits", "Column-slice cache hits.")
    stat_slice_cache_misses = CounterStat(
        "_stat_slice_misses", "Column-slice cache misses.")

    # ------------------------------------------------------------------
    # Range plumbing
    # ------------------------------------------------------------------

    @property
    def layout(self) -> Layout:
        """Record layout (columnar by default)."""
        return self._layout

    def _new_tail_segment(self, range_id: int,
                          segment_ref: tuple[str, int] | None = None,
                          page_capacity: int | None = None) -> TailSegment:
        if page_capacity is None:
            page_capacity = self.config.records_per_tail_page
        return TailSegment(
            range_id=range_id,
            layout=self.layout,
            width=self.schema.total_columns,
            page_capacity=page_capacity,
            block_size=self.config.update_range_size,
            rid_allocator=self.rid_allocator,
            page_counter=self.page_counter,
            page_directory=self.page_directory,
            kind=PageKind.TAIL,
            segment_ref=segment_ref,
            wal=self.wal,
            latch_waits=self._stat_latch_waits,
            page_class=BytesPage if self.config.bytes_pages else Page,
        )

    def _create_insert_range(self) -> InsertRange:
        size = self.config.insert_range_size
        start_rid = self.rid_allocator.reserve_base_range(size)
        first_range_id = (start_rid - 1) // self.config.update_range_size
        segment = self._new_tail_segment(
            first_range_id, segment_ref=("insert", len(self.insert_ranges)),
            page_capacity=self.config.records_per_page)
        block = self.rid_allocator.reserve_tail_block(size)
        segment.adopt_block(block)
        if self.wal is not None:
            self.wal.insert_range_created(start_rid, size, block.start_rid)
        insert_range = InsertRange(start_rid, size, segment)
        # Materialise the covering update ranges eagerly: the insert
        # range size is a multiple of the update range size by config
        # validation, so coverage is exact.
        with self._range_lock:
            rid = start_rid
            while rid < start_rid + size:
                range_id = (rid - 1) // self.config.update_range_size
                self.ranges[range_id] = UpdateRange(
                    range_id, rid, self.config.update_range_size,
                    insert_range)
                rid += self.config.update_range_size
            self.insert_ranges.append(insert_range)
        return insert_range

    def locate(self, rid: int) -> tuple[UpdateRange, int]:
        """Resolve a base RID to its update range and range offset."""
        if not is_base_rid(rid):
            raise StorageError("%d is not a base RID" % rid)
        range_id = (rid - 1) // self.config.update_range_size
        update_range = self.ranges.get(range_id)
        if update_range is None:
            raise KeyNotFoundError("base rid %d not allocated" % rid)
        return update_range, rid - update_range.start_rid

    def update_range_of(self, range_id: int) -> UpdateRange:
        """Return the update range with *range_id*."""
        try:
            return self.ranges[range_id]
        except KeyError:
            raise KeyNotFoundError("unknown range id %d" % range_id) from None

    def sorted_ranges(self) -> list[UpdateRange]:
        """All update ranges in RID order."""
        with self._range_lock:
            return [self.ranges[key] for key in sorted(self.ranges)]

    @property
    def scan_executor(self) -> Any:
        """The analytical scan executor serving this table.

        :class:`~repro.core.db.Database` installs one shared executor
        per database (so concurrent queries share one worker pool); a
        standalone table lazily builds its own from
        ``config.scan_parallelism``.
        """
        executor = self._scan_executor
        if executor is None:
            from ..exec.executor import ScanExecutor
            executor = ScanExecutor(self.config.scan_parallelism)
            self._scan_executor = executor
        return executor

    @scan_executor.setter
    def scan_executor(self, executor: Any) -> None:
        self._scan_executor = executor

    # ------------------------------------------------------------------
    # Start-time resolution
    # ------------------------------------------------------------------

    def columns_of_bits(self, bits: int) -> tuple[int, ...]:
        """Data columns flagged in a Schema Encoding bitmap (memoised)."""
        cached = self._bit_columns.get(bits)
        if cached is None:
            num_columns = self.schema.num_columns
            top_bit = 1 << (num_columns - 1)
            cached = tuple(column for column in range(num_columns)
                           if bits & (top_bit >> column))
            self._bit_columns[bits] = cached
        return cached

    def resolve_cell(self, cell: int) -> ResolvedTime:
        """Resolve a Start Time cell against the transaction manager."""
        return resolve_start_cell(cell, self.txn_source)

    def resolve_cell_settled(self, cell: int) -> ResolvedTime:
        """Resolve a cell, waiting out the pre-commit window.

        Snapshot **reads** must not guess about a transaction that
        already owns its commit time but has not finished validating:
        calling it invisible while a record resolved a moment later
        sees it committed tears the snapshot (one leg of a transfer
        visible, the other not — the conservation stress caught
        exactly this). The validate→commit window is short, so the
        reader spins, yielding; validation itself uses the unsettled
        resolver, so validators never wait on each other.
        """
        resolved = resolve_start_cell(cell, self.txn_source)
        if resolved.state is not TransactionState.PRE_COMMIT:
            return resolved
        for _ in _settle_ticks():
            resolved = resolve_start_cell(cell, self.txn_source)
            if resolved.state is not TransactionState.PRE_COMMIT:
                return resolved
        return resolved  # wedged pre-commit: undecided stays invisible

    def _resolver(self, predicate: VisibilityPredicate,
                  ) -> Callable[[int], ResolvedTime]:
        """The resolver a *predicate* wants (settled for snapshot reads)."""
        if getattr(predicate, "settle_precommit", False):
            return self.resolve_cell_settled
        return self.resolve_cell

    def committed_time_settled(self, cell: int) -> int | None:
        """:meth:`committed_time`, waiting out the pre-commit window."""
        if not cell & TXN_ID_FLAG:
            return cell
        if self.txn_source is None:
            return None

        def probe() -> tuple[bool, int | None]:
            state, commit_time = self.txn_source.lookup(
                cell & ~TXN_ID_FLAG)
            if state is TransactionState.COMMITTED:
                return True, commit_time
            return state is not TransactionState.PRE_COMMIT, None

        settled, commit_time = probe()
        if settled:
            return commit_time
        for _ in _settle_ticks():
            settled, commit_time = probe()
            if settled:
                return commit_time
        return None  # wedged pre-commit stays invisible

    def committed_time(self, cell: int) -> int | None:
        """Commit time of a Start Time cell, or None when uncommitted.

        Allocation-free fast path of :meth:`resolve_cell` for the scan
        and conflict-check hot loops.
        """
        if not cell & TXN_ID_FLAG:
            return cell
        if self.txn_source is None:
            return None
        state, commit_time = self.txn_source.lookup(cell & ~TXN_ID_FLAG)
        if state is TransactionState.COMMITTED:
            return commit_time
        return None

    def _tail_committed_time(self, segment: TailSegment, tail_offset: int,
                             cell: int) -> int | None:
        """:meth:`committed_time` plus lazy commit-time stamping.

        "Swapping the transaction ID with commit time is done lazily by
        future readers" (Section 5.1.1) — once a marker resolves to a
        commit time, the cell is refined in place so later readers skip
        the transaction-manager lookup entirely.
        """
        if not cell & TXN_ID_FLAG:
            return cell
        commit_time = self.committed_time(cell)
        if commit_time is not None:
            segment.replace_record_cell(tail_offset, START_TIME_COLUMN,
                                        cell, commit_time)
        return commit_time

    def _tail_committed_time_settled(self, segment: TailSegment,
                                     tail_offset: int,
                                     cell: int) -> int | None:
        """:meth:`_tail_committed_time`, waiting out pre-commit."""

        def probe() -> tuple[bool, int | None]:
            commit_time = self._tail_committed_time(segment, tail_offset,
                                                    cell)
            if commit_time is not None:
                return True, commit_time
            if self.txn_source is None:
                return True, None
            state, _ = self.txn_source.lookup(cell & ~TXN_ID_FLAG)
            return state is not TransactionState.PRE_COMMIT, None

        settled, commit_time = probe()
        if settled:
            return commit_time
        for _ in _settle_ticks():
            settled, commit_time = probe()
            if settled:
                return commit_time
        return None  # wedged pre-commit stays invisible

    # ------------------------------------------------------------------
    # Insert procedure (Section 3.2)
    # ------------------------------------------------------------------

    def insert(self, values: Sequence[Any], *,
               start_cell: int | None = None) -> int:
        """Insert a row; return its (stable) base RID.

        *start_cell* is either a commit timestamp (auto-commit default:
        the clock advanced) or a transaction marker installed by the OCC
        layer; in the latter case visibility is deferred to commit.
        """
        admission = self.admission
        if admission is not None:
            admission.admit()
        self.schema.validate_row(values)
        key = values[self.schema.key_index]
        existing = self.index.primary.get(key)
        if existing is not None and not self._key_slot_reusable(existing):
            raise DuplicateKeyError("duplicate primary key %r" % (key,))
        if start_cell is None:
            start_cell = self.clock.advance()
        with self._insert_lock:
            insert_range = self.insert_ranges[-1] \
                if self.insert_ranges else None
            offset = insert_range.allocate_slot() \
                if insert_range is not None else None
            if offset is None:
                insert_range = self._create_insert_range()
                offset = insert_range.allocate_slot()
                assert offset is not None
        rid = insert_range.start_rid + offset
        cells: dict[int, Any] = {
            INDIRECTION_COLUMN: NULL_RID,
            SCHEMA_ENCODING_COLUMN: SchemaEncoding.empty(
                self.schema.num_columns).to_int(),
            START_TIME_COLUMN: start_cell,
            LAST_UPDATED_COLUMN: start_cell,
            BASE_RID_COLUMN: rid,
        }
        for data_column, value in enumerate(values):
            cells[self.schema.physical_index(data_column)] = value
        insert_range.segment.write_record(offset, cells)
        if existing is not None:
            self.index.primary.replace(key, rid)
        else:
            try:
                self.index.primary.insert(key, rid)
            except DuplicateKeyError:
                # Lost an insert race on the same key: the slot is burnt
                # (tails are write-once) but never becomes visible.
                insert_range.segment.mark_tombstone(offset)
                raise
        self.index.on_insert(rid, list(values))
        self._stat_inserts.add()
        if insert_range.is_full and self.merge_notifier is not None:
            first_range_id = (insert_range.start_rid - 1) \
                // self.config.update_range_size
            count = insert_range.size // self.config.update_range_size
            if _LOCK_CHECK:
                guard_callback("merge_notifier (insert)")
            for range_id in range(first_range_id, first_range_id + count):
                self.merge_notifier(self, range_id, "insert")
        return rid

    def _key_slot_reusable(self, rid: int) -> bool:
        """True when *rid*'s latest committed version is a delete."""
        try:
            result = self.read_latest(rid, data_columns=())
        except KeyNotFoundError:
            return True
        return result is DELETED or result is None

    def remove_key_mapping(self, key: Any, rid: int) -> None:
        """Drop a primary-index entry (aborted insert rollback)."""
        if self.index.primary.get(key) == rid:
            self.index.primary.remove(key)

    # ------------------------------------------------------------------
    # Update / delete procedure (Section 3.1)
    # ------------------------------------------------------------------

    def try_latch(self, rid: int) -> bool:
        """CAS the latch bit of *rid*'s indirection word."""
        update_range, offset = self.locate(rid)
        return update_range.indirection.try_latch(offset)

    def unlatch(self, rid: int) -> None:
        """Release the indirection latch bit of *rid*."""
        update_range, offset = self.locate(rid)
        update_range.indirection.unlatch(offset)

    def latest_start_cell(self, rid: int) -> int:
        """Start Time cell of the newest version (tail or base).

        Used by the write protocol's second conflict check ("the start
        time of the latest version of the record is checked").
        """
        update_range, offset = self.locate(rid)
        indirection = update_range.indirection.read(offset)
        if indirection == NULL_RID:
            return self._read_base_cell(update_range, offset,
                                        START_TIME_COLUMN)
        segment, tail_offset = update_range.locate_tail(indirection)
        return segment.record_cell(tail_offset, START_TIME_COLUMN)

    def install_indirection(self, rid: int, tail_rid: int) -> None:
        """Point *rid* at *tail_rid* and release the latch (one CAS)."""
        update_range, offset = self.locate(rid)
        if self.wal is not None:
            self.wal.indirection_written(rid, tail_rid)
        update_range.indirection.set_and_unlatch(offset, tail_rid)

    def append_update(self, rid: int, updates: dict[int, Any],
                      start_cell: int, *, is_delete: bool = False) -> int:
        """Append tail record(s) for an update; return the new tail RID.

        Caller must hold the indirection latch of *rid* (the auto-commit
        :meth:`update` wrapper and the OCC layer both do). Appends the
        snapshot tail record for first-updated columns, then the actual
        update (or delete) record, per Section 3.1. Does **not** install
        the indirection — the caller does, so a transaction can abort
        between append and install without corrupting the chain.

        Two implementations share this contract: the **flat-cell**
        path (``config.flat_appends``, default) — snapshot and update
        records drawn from one allocation latch hold
        (:meth:`TailSegment.allocate_pair`), original values read in
        one batched base-page read, cells written from parallel
        column/value sequences with pure-int Schema Encoding math, and
        the dirty/horizon bookkeeping folded into a single lock
        acquisition — and the original dict-of-cells path, kept as the
        semantics oracle the property suite crosses the flat path
        against.
        """
        if not self.config.flat_appends:
            return self._append_update_dict(rid, updates, start_cell,
                                            is_delete=is_delete)
        update_range, offset = self.locate(rid)
        return self._append_update_located(update_range, offset, rid,
                                           updates, start_cell,
                                           is_delete=is_delete)

    def _append_update_located(self, update_range: UpdateRange, offset: int,
                               rid: int, updates: dict[int, Any],
                               start_cell: int, *, is_delete: bool = False,
                               carried: tuple[int, dict[int, Any]] | None
                               = None) -> int:
        """The flat-cell append body (record already located).

        *carried* is the cumulation source when the caller already
        walked the chain (the fused OCC conflict check produces it);
        None means walk for it here.
        """
        tail = update_range.tail
        if tail is None:
            tail = update_range.ensure_tail(
                lambda: self._new_tail_segment(update_range.range_id))
        num_columns = self.schema.num_columns
        for data_column in updates:
            if not 0 <= data_column < num_columns:
                raise SchemaMismatchError(
                    "data column %d out of range" % data_column)
        previous = update_range.indirection.read(offset)
        ever_bits = update_range.updated_bits[offset]
        top_bit = 1 << (num_columns - 1)

        bits_delta = 0
        if is_delete:
            if self.snapshot_on_delete:
                snap_bits = ((1 << num_columns) - 1) & ~ever_bits
            else:
                snap_bits = 0
        else:
            for data_column in updates:
                bits_delta |= top_bit >> data_column
            snap_bits = bits_delta & ~ever_bits

        # Version-horizon bookkeeping: a plain start cell *is* the
        # commit time; a transaction marker's commit time is drawn
        # from the monotonic clock strictly after this append, so the
        # current reading is a valid lower bound.
        bound = start_cell if not start_cell & TXN_ID_FLAG \
            else self.clock.now()
        original_previous = previous

        snap_cells: dict[int, Any] | None = None
        if snap_bits:
            # Fused Lemma-2 snapshot + update append: one latch hold
            # reserves both tail slots, one batched base read serves
            # the snapshot's Start Time and original values.
            snap_columns = self.columns_of_bits(snap_bits)
            physicals = [START_TIME_COLUMN]
            physicals.extend(NUM_METADATA_COLUMNS + column
                             for column in snap_columns)
            base_cells = self._read_base_values(update_range, offset,
                                                physicals)
            snap_rid, snap_offset, new_rid, new_offset = \
                tail.allocate_pair()
            update_range.note_tail_appends(
                offset, 2, bound, -1 if is_delete else bits_delta)
            back = previous if previous != NULL_RID else rid
            snap_cells = {INDIRECTION_COLUMN: back,
                          SCHEMA_ENCODING_COLUMN:
                              snap_bits | (1 << num_columns),
                          START_TIME_COLUMN: base_cells[0],
                          BASE_RID_COLUMN: rid}
            for physical, value in zip(physicals[1:], base_cells[1:]):
                snap_cells[physical] = value
            previous = snap_rid
        else:
            new_rid, new_offset = tail.allocate()
            update_range.note_tail_appends(
                offset, 1, bound, -1 if is_delete else bits_delta)

        backpointer = previous if previous != NULL_RID else rid
        if is_delete:
            encoding_int = 0
            data_physicals: Sequence[int] = ()
            data_values: Sequence[Any] = ()
        elif self.config.cumulative_updates:
            carried_bits, carried_values = carried if carried is not None \
                else self._cumulation_source(update_range,
                                             original_previous)
            if carried_bits:
                merged = dict(carried_values)
                merged.update(updates)
                encoding_int = carried_bits | bits_delta
                data_physicals = [NUM_METADATA_COLUMNS + column
                                  for column in merged]
                data_values = list(merged.values())
            else:
                encoding_int = bits_delta
                data_physicals = [NUM_METADATA_COLUMNS + column
                                  for column in updates]
                data_values = list(updates.values())
        else:
            encoding_int = bits_delta
            data_physicals = [NUM_METADATA_COLUMNS + column
                              for column in updates]
            data_values = list(updates.values())

        record_physicals = [INDIRECTION_COLUMN, SCHEMA_ENCODING_COLUMN,
                            START_TIME_COLUMN, BASE_RID_COLUMN]
        record_values: list[Any] = [backpointer, encoding_int,
                                    start_cell, rid]
        record_physicals.extend(data_physicals)
        record_values.extend(data_values)
        if snap_cells is None:
            tail.write_record_flat(new_offset, record_physicals,
                                   record_values)
        elif is_delete:
            # A delete's snapshot spans columns the delete record does
            # not carry — the pair write's subset contract doesn't
            # hold, so the two records write separately.
            tail.write_record_flat(snap_offset, list(snap_cells),
                                   list(snap_cells.values()))
            tail.write_record_flat(new_offset, record_physicals,
                                   record_values)
        else:
            tail.write_record_pair_flat(snap_offset, snap_cells,
                                        new_offset, record_physicals,
                                        record_values)

        if bits_delta:
            update_range.updated_bits[offset] = ever_bits | bits_delta
        self._stat_flat_appends.add()
        if is_delete:
            self._stat_deletes.add()
        else:
            self._stat_updates.add()
        return new_rid

    def _append_update_dict(self, rid: int, updates: dict[int, Any],
                            start_cell: int, *,
                            is_delete: bool = False) -> int:
        """The original dict-of-cells append (the flat path's oracle)."""
        update_range, offset = self.locate(rid)
        tail = update_range.ensure_tail(
            lambda: self._new_tail_segment(update_range.range_id))
        num_columns = self.schema.num_columns
        for data_column in updates:
            if not 0 <= data_column < num_columns:
                raise SchemaMismatchError(
                    "data column %d out of range" % data_column)
        previous = update_range.indirection.read(offset)
        ever_bits = update_range.updated_bits[offset]

        if is_delete:
            snapshot_columns = [
                column for column in range(num_columns)
                if self.snapshot_on_delete
                and not ever_bits & (1 << (num_columns - 1 - column))
            ]
        else:
            snapshot_columns = [
                column for column in updates
                if not ever_bits & (1 << (num_columns - 1 - column))
            ]

        if snapshot_columns:
            previous = self._append_snapshot(
                update_range, offset, rid, tail, previous,
                sorted(snapshot_columns))

        new_rid, new_offset = tail.allocate()
        update_range.note_tail_append(offset)
        # Version-horizon bookkeeping: a plain start cell *is* the
        # commit time; a transaction marker's commit time is drawn
        # from the monotonic clock strictly after this append, so the
        # current reading is a valid lower bound.
        update_range.note_horizon(
            start_cell if not start_cell & TXN_ID_FLAG
            else self.clock.now())
        backpointer = previous if previous != NULL_RID else rid
        if is_delete:
            encoding = SchemaEncoding.empty(num_columns)
            materialized: dict[int, Any] = {}
        elif self.config.cumulative_updates:
            carried_bits, carried_values = self._cumulation_source(
                update_range, previous)
            bits = carried_bits
            materialized = dict(carried_values)
            for data_column, value in updates.items():
                bits |= 1 << (num_columns - 1 - data_column)
                materialized[data_column] = value
            encoding = SchemaEncoding(num_columns, bits)
        else:
            encoding = SchemaEncoding.from_columns(num_columns, updates)
            materialized = dict(updates)

        cells: dict[int, Any] = {
            INDIRECTION_COLUMN: backpointer,
            SCHEMA_ENCODING_COLUMN: encoding.to_int(),
            START_TIME_COLUMN: start_cell,
            BASE_RID_COLUMN: rid,
        }
        for data_column, value in materialized.items():
            cells[self.schema.physical_index(data_column)] = value
        tail.write_record(new_offset, cells)

        if not is_delete:
            bits_delta = 0
            for data_column in updates:
                bits_delta |= 1 << (num_columns - 1 - data_column)
            update_range.updated_bits[offset] = ever_bits | bits_delta
        if is_delete:
            self._stat_deletes.add()
        else:
            self._stat_updates.add()
        return new_rid

    def occ_append(self, rid: int, updates: dict[int, Any],
                   start_cell: int, txn_id: int | None, *,
                   is_delete: bool = False,
                   ) -> tuple[int, UpdateRange, int]:
        """The OCC write in one locate and one chain pass.

        Latch CAS, write-write conflict check, and tail append fused:
        the conflict check's walk already visits the newest committed
        regular record — exactly the cumulation source the append
        needs — so the fused walk hands its ``(bits, values)`` to the
        append instead of re-walking the chain. Raises
        :class:`~repro.errors.WriteWriteConflict` /
        :class:`~repro.errors.RecordDeletedError` with the latch
        released; on success the latch is **still held** (exactly like
        the unfused ``try_latch`` → ``check_write_conflict`` →
        ``append_update`` sequence) and the caller installs the
        indirection — or aborts — to release it. Returns ``(tail_rid,
        update_range, offset)`` so the install and post-commit merge
        nudge need no re-locate.
        """
        admission = self.admission
        if admission is not None:
            admission.admit()
        update_range, offset = self.locate(rid)
        if not update_range.indirection.try_latch(offset):
            self._stat_ww_conflicts.add()
            raise WriteWriteConflict(
                "txn %r: record %d latch held by a competing writer"
                % (txn_id, rid))
        try:
            if not self.config.flat_appends:
                self.check_write_conflict(rid, txn_id)
                tail_rid = self._append_update_dict(
                    rid, updates, start_cell, is_delete=is_delete)
                return tail_rid, update_range, offset
            carried = self._check_conflict_and_cumulate(
                update_range, offset, rid, txn_id,
                need_cumulation=self.config.cumulative_updates
                and not is_delete)
            tail_rid = self._append_update_located(
                update_range, offset, rid, updates, start_cell,
                is_delete=is_delete, carried=carried)
            return tail_rid, update_range, offset
        except BaseException:
            update_range.indirection.unlatch(offset)
            raise

    def install_indirection_located(self, update_range: UpdateRange,
                                    offset: int, rid: int,
                                    tail_rid: int) -> None:
        """:meth:`install_indirection` without the re-locate."""
        if self.wal is not None:
            self.wal.indirection_written(rid, tail_rid)
        update_range.indirection.set_and_unlatch(offset, tail_rid)

    def _maybe_notify_merge_located(self,
                                    update_range: UpdateRange) -> None:
        """:meth:`_maybe_notify_merge` without the re-locate."""
        if self.merge_notifier is None or update_range.merge_pending:
            return
        if update_range.unmerged_tail_count() >= self.config.merge_threshold:
            update_range.merge_pending = True
            if _LOCK_CHECK:
                guard_callback("merge_notifier (update)")
            self.merge_notifier(self, update_range.range_id, "update")

    def _check_conflict_and_cumulate(
            self, update_range: UpdateRange, offset: int, rid: int,
            txn_id: int | None, need_cumulation: bool,
            ) -> tuple[int, dict[int, Any]] | None:
        """One walk: the paper's second write check + cumulation source.

        Caller holds the indirection latch. The conflict state machine
        is exactly :meth:`check_write_conflict`'s — a live competing
        writer at the chain head raises
        :class:`~repro.errors.WriteWriteConflict`, a deleted latest
        committed-or-own version raises
        :class:`~repro.errors.RecordDeletedError` — and on the way it
        captures what :meth:`_cumulation_source` would: the first
        regular non-tombstone record's ``(bits, values)``, or the
        ``(0, {})`` reset when the TPS watermark covers the cursor
        first. Returns None when *need_cumulation* is False.
        """
        num_columns = self.schema.num_columns
        mask = (1 << num_columns) - 1
        snapshot_bit = 1 << num_columns
        tps = update_range.tps_rid
        cursor = update_range.indirection.read(offset)
        first = True
        carried: tuple[int, dict[int, Any]] | None = None
        carried_known = not need_cumulation
        while is_tail_rid(cursor):
            if not carried_known and tps_applied(tps, cursor):
                carried = (0, {})  # merged already: cumulation resets
                carried_known = True
            segment, tail_offset = update_range.locate_tail(cursor)
            encoding, start_cell, backpointer = segment.record_cells(
                tail_offset, _WALK_METADATA)
            if not encoding & snapshot_bit:
                tombstone = segment.is_tombstone(tail_offset)
                own = txn_id is not None \
                    and start_cell == (TXN_ID_FLAG | txn_id)
                committed = self._tail_committed_time(
                    segment, tail_offset, start_cell) is not None
                if first and not committed and not own and not tombstone:
                    # Live writer from another transaction.
                    resolved = self.resolve_cell(start_cell)
                    if resolved.state in (TransactionState.ACTIVE,
                                          TransactionState.PRE_COMMIT):
                        self._stat_ww_conflicts.add()
                        raise WriteWriteConflict(
                            "record %d has uncommitted writer %r"
                            % (rid, resolved.txn_id))
                first = False
                if not tombstone:
                    if not carried_known:
                        bits = encoding & mask
                        carried = (bits, {
                            column: segment.record_cell(
                                tail_offset, NUM_METADATA_COLUMNS + column)
                            for column in self.columns_of_bits(bits)})
                        carried_known = True
                    if committed or own:
                        if not encoding & mask:
                            self._stat_deleted_conflicts.add()
                            raise RecordDeletedError(
                                "record %d is deleted" % rid)
                        return carried
            cursor = backpointer
        if not carried_known:
            carried = (0, {})
        return carried

    def _append_snapshot(self, update_range: UpdateRange, offset: int,
                         rid: int, tail: TailSegment, previous: int,
                         columns: list[int]) -> int:
        """Append the original-value snapshot record (Lemma 2)."""
        snap_rid, snap_offset = tail.allocate()
        update_range.note_tail_append(offset)
        base_start = self._read_base_cell(update_range, offset,
                                          START_TIME_COLUMN)
        encoding = SchemaEncoding.from_columns(
            self.schema.num_columns, columns, is_snapshot=True)
        cells: dict[int, Any] = {
            INDIRECTION_COLUMN: previous if previous != NULL_RID else rid,
            SCHEMA_ENCODING_COLUMN: encoding.to_int(),
            START_TIME_COLUMN: base_start,
            BASE_RID_COLUMN: rid,
        }
        for data_column in columns:
            original = self._read_base_cell(
                update_range, offset, self.schema.physical_index(data_column))
            cells[self.schema.physical_index(data_column)] = original
        tail.write_record(snap_offset, cells)
        return snap_rid

    def _cumulation_source(self, update_range: UpdateRange,
                           previous: int) -> tuple[int, dict[int, Any]]:
        """Carried bits/values for a cumulative update (Section 3.1).

        Walks back from *previous*, skipping snapshots and tombstones,
        until the first regular tail record *newer than the last merge*
        (older records are already consolidated — the TPS-based
        cumulation reset of Section 4.2, Table 5).
        """
        tps = update_range.tps_rid
        num_columns = self.schema.num_columns
        mask = (1 << num_columns) - 1
        snapshot_bit = 1 << num_columns
        cursor = previous
        while is_tail_rid(cursor):
            if tps_applied(tps, cursor):
                break  # merged already: cumulation resets here
            segment, tail_offset = update_range.locate_tail(cursor)
            encoding = segment.record_cell(tail_offset,
                                           SCHEMA_ENCODING_COLUMN)
            if not encoding & snapshot_bit \
                    and not segment.is_tombstone(tail_offset):
                bits = encoding & mask
                values = {
                    column: segment.record_cell(
                        tail_offset, NUM_METADATA_COLUMNS + column)
                    for column in self.columns_of_bits(bits)
                }
                return bits, values
            cursor = segment.record_cell(tail_offset, INDIRECTION_COLUMN)
        return 0, {}

    # -- auto-commit wrappers -------------------------------------------------

    def update(self, rid: int, updates: dict[int, Any], *,
               start_cell: int | None = None) -> int:
        """Latch, append, install: the full auto-commit update."""
        if not updates:
            raise SchemaMismatchError("update requires at least one column")
        if self.schema.key_index in updates:
            raise SchemaMismatchError("primary key updates are not supported")
        admission = self.admission
        if admission is not None:
            admission.admit()
        from ..errors import WriteWriteConflict
        if not self.try_latch(rid):
            self._stat_ww_conflicts.add()
            raise WriteWriteConflict("record %d is write-latched" % rid)
        try:
            indexed = [column for column in updates
                       if self.index.secondary(column) is not None]
            old_values = self.read_latest(rid, data_columns=indexed)
            if old_values is DELETED:
                raise RecordDeletedError("record %d is deleted" % rid)
            if start_cell is None:
                start_cell = self.clock.advance()
            tail_rid = self.append_update(rid, updates, start_cell)
        except BaseException:
            self.unlatch(rid)
            raise
        self.install_indirection(rid, tail_rid)  # releases the latch
        self._maintain_secondary_indexes(rid, updates, old_values or {},
                                         start_cell)
        self._maybe_notify_merge(rid)
        return tail_rid

    def delete(self, rid: int, *, start_cell: int | None = None) -> int:
        """Latch, append a delete record, install (Section 3.1)."""
        admission = self.admission
        if admission is not None:
            admission.admit()
        from ..errors import WriteWriteConflict
        if not self.try_latch(rid):
            self._stat_ww_conflicts.add()
            raise WriteWriteConflict("record %d is write-latched" % rid)
        try:
            latest = self.read_latest(rid, data_columns=())
            if latest is DELETED:
                raise RecordDeletedError("record %d is already deleted" % rid)
            if start_cell is None:
                start_cell = self.clock.advance()
            tail_rid = self.append_update(rid, {}, start_cell,
                                          is_delete=True)
        except BaseException:
            self.unlatch(rid)
            raise
        self.install_indirection(rid, tail_rid)
        self._maybe_notify_merge(rid)
        return tail_rid

    def _maintain_secondary_indexes(self, rid: int, updates: dict[int, Any],
                                    old_values: dict[int, Any],
                                    superseded_at: int) -> None:
        """Add new index entries; defer removal of old ones (footnote 3)."""
        for data_column, new_value in updates.items():
            index = self.index.secondary(data_column)
            if index is None:
                continue
            index.insert(new_value, rid)
            if data_column in old_values \
                    and not is_null(old_values[data_column]):
                index.mark_stale(old_values[data_column], rid, superseded_at)

    def _maybe_notify_merge(self, rid: int) -> None:
        if self.merge_notifier is None:
            return
        update_range, _ = self.locate(rid)
        if update_range.merge_pending:
            return
        if update_range.unmerged_tail_count() >= self.config.merge_threshold:
            update_range.merge_pending = True
            if _LOCK_CHECK:
                guard_callback("merge_notifier (update)")
            self.merge_notifier(self, update_range.range_id, "update")

    def mark_tail_tombstone(self, base_rid: int, tail_rid: int) -> None:
        """Tombstone an aborted tail record (redo-only abort path)."""
        update_range, _ = self.locate(base_rid)
        segment, tail_offset = update_range.locate_tail(tail_rid)
        encoding = SchemaEncoding.from_int(
            self.schema.num_columns,
            segment.record_cell(tail_offset, SCHEMA_ENCODING_COLUMN))
        if encoding.is_snapshot:
            # Snapshot records carry committed original values and stay
            # valid regardless of the writing transaction's fate.
            return
        segment.mark_tombstone(tail_offset)
        if self.wal is not None:
            self.wal.tombstoned(base_rid, tail_rid)
        self._stat_aborted_tails.add()

    def mark_insert_tombstone(self, rid: int) -> None:
        """Tombstone an aborted insert (the slot never becomes visible)."""
        update_range, offset = self.locate(rid)
        segment = update_range.insert_range.segment
        segment.mark_tombstone(update_range.insert_offset(offset))
        if self.wal is not None:
            self.wal.insert_tombstoned(rid)

    # ------------------------------------------------------------------
    # Base-cell access
    # ------------------------------------------------------------------

    def range_chains(self, update_range: UpdateRange) -> list:
        """Per-range base chains, one list index per physical column.

        The point-read hot path resolves 6+ chains per statement; a
        ``(range_id, column)`` tuple allocation and dict lookup each is
        measurable at OLTP rates. This caches the resolved chain list
        per range, revalidated against the page directory's monotone
        chain generation with a single int compare — a merge swap bumps
        the generation and the next reader rebuilds. Entries may be
        None (column without a chain, e.g. pre-merge). Mixed-generation
        reads during a concurrent swap are no different from today's
        per-column lookups racing the same swap; paths that need
        cross-column agreement keep their Lemma-3 TPS checks.
        """
        directory = self.page_directory
        version = directory.version
        cached = update_range.reader_chains
        if cached is not None and cached[0] == version:
            return cached[1]
        chain_get = directory.chain_getter()
        range_id = update_range.range_id
        chains = [chain_get((range_id, column))
                  for column in range(self.schema.total_columns)]
        update_range.reader_chains = (version, chains)
        return chains

    def _base_chain(self, update_range: UpdateRange,
                    physical_column: int) -> tuple[Page, ...] | None:
        key_column = ROW_CHAIN_COLUMN if self._layout is Layout.ROW \
            else physical_column
        return self.page_directory.base_chain(update_range.range_id,
                                              key_column)

    def _read_base_cell(self, update_range: UpdateRange, offset: int,
                        physical_column: int) -> Any:
        if update_range.merged:
            chain = self._base_chain(update_range, physical_column)
            if chain is None:
                raise StorageError(
                    "range %d merged but no chain for column %d"
                    % (update_range.range_id, physical_column))
            page = chain[offset // self._records_per_page]
            slot = offset % self._records_per_page
            if self._layout is Layout.ROW:
                return page.read_cell(slot, physical_column)
            return page.read_slot(slot)
        segment = update_range.insert_range.segment
        return segment.record_cell(update_range.insert_offset(offset),
                                   physical_column)

    def _read_base_values(self, update_range: UpdateRange, offset: int,
                          physical_columns: Sequence[int]) -> list[Any]:
        """Batched base-cell read: one locate, N cells (read hot path)."""
        if update_range.merged:
            page_index = offset // self._records_per_page
            slot = offset % self._records_per_page
            if self._layout is Layout.ROW:
                chain = self.page_directory.base_chain(
                    update_range.range_id, ROW_CHAIN_COLUMN)
                row = chain[page_index].read_row(slot)
                return [row[column] for column in physical_columns]
            chains = self.range_chains(update_range)
            return [
                chains[column][page_index].read_slot(slot)
                for column in physical_columns
            ]
        segment = update_range.insert_range.segment
        insert_offset = update_range.insert_offset(offset)
        return [segment.record_cell(insert_offset, column)
                for column in physical_columns]

    def base_record_exists(self, update_range: UpdateRange,
                           offset: int) -> bool:
        """True when the base slot holds a (possibly uncommitted) record."""
        if update_range.merged:
            return offset not in update_range.base_tombstones
        segment = update_range.insert_range.segment
        insert_offset = update_range.insert_offset(offset)
        return segment.record_written(insert_offset) \
            and not segment.is_tombstone(insert_offset)

    # ------------------------------------------------------------------
    # Read paths
    # ------------------------------------------------------------------

    def read_latest_fast(self, rid: int,
                         data_columns: Sequence[int] | None = None,
                         txn_id: int | None = None,
                         ) -> dict[int, Any] | Deleted | None:
        """Latest-committed read, allocation-lean (read-committed path).

        Semantically equivalent to :meth:`read_latest` with the
        latest-committed predicate (plus own-writes visibility when
        *txn_id* is given), but works on raw encoding ints and walks at
        most base + one tail record under cumulative updates — the
        paper's 2-hop guarantee.
        """
        update_range = self.ranges.get((rid - 1) // self._range_size)
        if update_range is None:
            self.locate(rid)  # raises the canonical error
            raise KeyNotFoundError("base rid %d not allocated" % rid)
        offset = rid - update_range.start_rid
        if data_columns is None:
            data_columns = range(self.schema.num_columns)
        indirection = update_range.indirection.read(offset)
        if indirection == NULL_RID:
            if update_range.merged and self._layout is not Layout.ROW:
                # Inlined clean-merged fast path: the dominant case of
                # a loaded table (never-updated record, consolidated
                # base pages) pays one chain lookup per needed column
                # and nothing else — no physicals list, no batched
                # read indirection, no zip.
                if offset in update_range.base_tombstones:
                    raise KeyNotFoundError(
                        "base rid %d has no record" % rid)
                chains = self.range_chains(update_range)
                page_index, slot = divmod(offset, self._records_per_page)
                start_cell = chains[START_TIME_COLUMN][page_index] \
                    .peek_slot(slot)
                if start_cell & TXN_ID_FLAG:
                    own_write = txn_id is not None \
                        and start_cell == (TXN_ID_FLAG | txn_id)
                    if not own_write \
                            and self.committed_time(start_cell) is None:
                        return None
                if chains[self._key_physical][page_index] \
                        .peek_slot(slot) is NULL:
                    return None
                meta = NUM_METADATA_COLUMNS
                return {column: chains[meta + column][page_index]
                        .peek_slot(slot)
                        for column in data_columns}
            if not self.base_record_exists(update_range, offset):
                raise KeyNotFoundError("base rid %d has no record" % rid)
            physicals = [START_TIME_COLUMN, self._key_physical]
            physicals.extend(NUM_METADATA_COLUMNS + column
                             for column in data_columns)
            cells = self._read_base_values(update_range, offset, physicals)
            start_cell = cells[0]
            own_write = txn_id is not None \
                and start_cell == (TXN_ID_FLAG | txn_id)
            if not own_write and self.committed_time(start_cell) is None:
                return None
            if is_null(cells[1]):
                return None
            return dict(zip(data_columns, cells[2:]))
        num_columns = self.schema.num_columns
        mask = (1 << num_columns) - 1
        snapshot_bit = 1 << num_columns
        top_bit = 1 << (num_columns - 1)
        cumulative = self.config.cumulative_updates
        remaining = dict.fromkeys(data_columns)
        values: dict[int, Any] = {}
        cursor = indirection
        found_version = False
        while is_tail_rid(cursor):
            segment, tail_offset = update_range.locate_tail(cursor)
            # One dispatch for the three per-hop metadata cells.
            encoding, start_cell, backpointer = segment.record_cells(
                tail_offset, _WALK_METADATA)
            if not encoding & snapshot_bit \
                    and not segment.is_tombstone(tail_offset):
                visible = self._tail_committed_time(
                    segment, tail_offset, start_cell) is not None \
                    or (txn_id is not None
                        and start_cell == (TXN_ID_FLAG | txn_id))
                if visible:
                    bits = encoding & mask
                    if not found_version:
                        found_version = True
                        if not bits:
                            return DELETED
                    for data_column in list(remaining):
                        if bits & (top_bit >> data_column):
                            values[data_column] = segment.record_cell(
                                tail_offset,
                                NUM_METADATA_COLUMNS + data_column)
                            del remaining[data_column]
                    if cumulative or not remaining:
                        break
            cursor = backpointer
        if not found_version:
            # No visible tail version: the base record is the version.
            return self.read_latest(rid, data_columns)
        if remaining:
            physicals = [NUM_METADATA_COLUMNS + column
                         for column in remaining]
            cells = self._read_base_values(update_range, offset, physicals)
            for data_column, value in zip(remaining, cells):
                values[data_column] = value
        return values

    def read_latest_many(self, rids: Sequence[int],
                         data_columns: Sequence[int] | None = None,
                         txn_id: int | None = None,
                         ) -> dict[int, dict[int, Any] | Deleted | None]:
        """Batched :meth:`read_latest_fast` over many base RIDs.

        Groups *rids* by update range and serves *clean* records —
        those whose indirection is NULL or covered by the range TPS —
        batched: merged columnar ranges read straight from the
        base/merged page chains (one page-directory lookup per range
        and column), merged row-layout ranges read whole-page row
        slices (:meth:`~repro.core.page.RowPage.read_rows`), and
        unmerged insert-only ranges read straight from the table-level
        insert tails with one page-list snapshot per column — no chain
        resolution at all for a never-updated record. Records with live
        unmerged tail activity fall back to the per-record 2-hop walk,
        so the result agrees with :meth:`read_latest_fast` on every
        rid.

        Returns ``{rid: values | DELETED | None}``; raises
        :class:`~repro.errors.KeyNotFoundError` like the per-rid path
        when a rid has no record.
        """
        if data_columns is None:
            data_columns = range(self.schema.num_columns)
        data_columns = tuple(data_columns)
        results: dict[int, dict[int, Any] | Deleted | None] = {}
        if not self.config.batched_reads:
            for rid in rids:
                results[rid] = self.read_latest_fast(rid, data_columns,
                                                     txn_id)
            return results
        range_size = self.config.update_range_size
        groups: dict[int, list[int]] = {}
        for rid in rids:
            if not is_base_rid(rid):
                raise StorageError("%d is not a base RID" % rid)
            groups.setdefault((rid - 1) // range_size, []).append(rid)
        records_per_page = self._records_per_page
        key_physical = NUM_METADATA_COLUMNS + self.schema.key_index
        physicals = [NUM_METADATA_COLUMNS + column
                     for column in data_columns]
        directory = self.page_directory
        for range_id, group in groups.items():
            update_range = self.ranges.get(range_id)
            if update_range is None:
                raise KeyNotFoundError(
                    "base rid %d not allocated" % group[0])
            if not update_range.merged:
                self._read_unmerged_group(update_range, group,
                                          data_columns, txn_id, results)
                continue
            if self._layout is Layout.ROW:
                self._read_merged_rows_group(update_range, group,
                                             data_columns, txn_id, results)
                continue
            # Snapshot the TPS watermark BEFORE resolving the chains: a
            # concurrent merge swaps chains first and advances tps_rid
            # afterwards, so a stale tps can only misclassify a
            # just-consolidated record as dirty (harmless fallback) —
            # the reverse order could pair the new tps with pre-merge
            # pages and read stale values as "clean".
            tps = update_range.tps_rid
            tombstones = set(update_range.base_tombstones)
            key_chain = directory.base_chain(range_id, key_physical)
            data_chains = [directory.base_chain(range_id, physical)
                           for physical in physicals]
            indirection = update_range.indirection
            start_rid = update_range.start_rid
            for rid in group:
                offset = rid - start_rid
                ind = indirection.read(offset)
                if (ind != NULL_RID and not tps_applied(tps, ind)) \
                        or offset in tombstones:
                    # Unmerged tail activity (or a base hole): the
                    # per-record walk handles visibility exactly.
                    results[rid] = self.read_latest_fast(rid, data_columns,
                                                         txn_id)
                    continue
                page_index = offset // records_per_page
                slot = offset % records_per_page
                key_page = key_chain[page_index]
                seen_tps = key_page.tps_rid
                if is_null(key_page.read_slot(slot)):
                    # Merged delete (ind points at the delete record).
                    results[rid] = DELETED if ind != NULL_RID else None
                    continue
                values: dict[int, Any] = {}
                consistent = True
                for data_column, chain in zip(data_columns, data_chains):
                    page = chain[page_index]
                    if page.tps_rid != seen_tps:
                        # Lemma 3: decoupled per-column merge in flight;
                        # repair via the always-correct chain walk.
                        consistent = False
                        break
                    values[data_column] = page.read_slot(slot)
                if consistent:
                    results[rid] = values
                else:
                    results[rid] = self.read_latest_fast(rid, data_columns,
                                                         txn_id)
        return results

    def _read_unmerged_group(self, update_range: UpdateRange,
                             group: Sequence[int],
                             data_columns: Sequence[int],
                             txn_id: int | None,
                             results: dict[int, Any]) -> None:
        """Batched reads of an unmerged (insert-segment) range.

        A never-updated record needs no chain resolution: its only
        version lives in the table-level insert tails, so it is served
        straight from those base pages — one page-list snapshot per
        column instead of a locate + cell-by-cell read per record.
        Records with any indirection (plus tombstones and compressed
        regions) keep the exact per-record 2-hop walk.
        """
        segment = update_range.insert_range.segment
        indirection = update_range.indirection
        start_rid = update_range.start_rid
        delta = start_rid - update_range.insert_range.start_rid
        capacity = segment.page_capacity
        key_physical = NUM_METADATA_COLUMNS + self.schema.key_index
        row_layout = self._layout is Layout.ROW
        if row_layout:
            row_pages = segment.row_pages()
            row_cache: dict[int, list] = {}
        else:
            physicals = [START_TIME_COLUMN, key_physical]
            physicals.extend(NUM_METADATA_COLUMNS + column
                             for column in data_columns)
            page_lists = {physical: segment.pages_for_column(physical)
                          for physical in dict.fromkeys(physicals)}

            def cell(physical: int, insert_offset: int) -> Any:
                pages = page_lists[physical]
                page_index, slot = divmod(insert_offset, capacity)
                if page_index >= len(pages):
                    return NULL
                value = pages[page_index].peek_slot(slot)
                return NULL if value is UNWRITTEN else value

        for rid in group:
            offset = rid - start_rid
            if indirection.read(offset) != NULL_RID:
                results[rid] = self.read_latest_fast(rid, data_columns,
                                                     txn_id)
                continue
            insert_offset = delta + offset
            if insert_offset < segment.compressed_upto \
                    or segment.is_tombstone(insert_offset):
                # Compressed region (never for live insert tails) or an
                # aborted insert: the per-record path owns the edge
                # cases, including the KeyNotFoundError contract.
                results[rid] = self.read_latest_fast(rid, data_columns,
                                                     txn_id)
                continue
            if row_layout:
                page_index, slot = divmod(insert_offset, capacity)
                rows = row_cache.get(page_index)
                if rows is None:
                    rows = row_cache[page_index] = \
                        row_pages[page_index].read_rows() \
                        if page_index < len(row_pages) else []
                row = rows[slot] if slot < len(rows) else None
                if row is None:
                    raise KeyNotFoundError(
                        "base rid %d has no record" % rid)
                start_cell = row[START_TIME_COLUMN]
                key_value = row[key_physical]
            else:
                start_cell = cell(START_TIME_COLUMN, insert_offset)
                if is_null(start_cell):
                    raise KeyNotFoundError(
                        "base rid %d has no record" % rid)
                key_value = cell(key_physical, insert_offset)
            own_write = txn_id is not None \
                and start_cell == (TXN_ID_FLAG | txn_id)
            if (not own_write
                    and self.committed_time(start_cell) is None) \
                    or is_null(key_value):
                results[rid] = None
                continue
            if row_layout:
                results[rid] = {column: row[NUM_METADATA_COLUMNS + column]
                                for column in data_columns}
            else:
                results[rid] = {
                    column: cell(NUM_METADATA_COLUMNS + column,
                                 insert_offset)
                    for column in data_columns
                }

    def _read_merged_rows_group(self, update_range: UpdateRange,
                                group: Sequence[int],
                                data_columns: Sequence[int],
                                txn_id: int | None,
                                results: dict[int, Any]) -> None:
        """Batched reads of a merged row-layout range.

        Clean records read whole-page row slices
        (:meth:`~repro.core.page.RowPage.read_rows`) from the merged
        chain — one list copy per page instead of a chain resolution
        and read_row call per record. The TPS watermark is snapshotted
        *before* the chain resolves (the PR-1 rule), so a concurrent
        merge can only cause harmless fallbacks, never a stale "clean"
        read.
        """
        tps = update_range.tps_rid
        tombstones = set(update_range.base_tombstones)
        chain = self.page_directory.base_chain(update_range.range_id,
                                               ROW_CHAIN_COLUMN)
        if chain is None:  # mid-install: the per-record walk is safe
            for rid in group:
                results[rid] = self.read_latest_fast(rid, data_columns,
                                                     txn_id)
            return
        indirection = update_range.indirection
        start_rid = update_range.start_rid
        records_per_page = self._records_per_page
        key_physical = NUM_METADATA_COLUMNS + self.schema.key_index
        row_cache: dict[int, list] = {}
        for rid in group:
            offset = rid - start_rid
            ind = indirection.read(offset)
            if (ind != NULL_RID and not tps_applied(tps, ind)) \
                    or offset in tombstones:
                results[rid] = self.read_latest_fast(rid, data_columns,
                                                     txn_id)
                continue
            page_index, slot = divmod(offset, records_per_page)
            rows = row_cache.get(page_index)
            if rows is None:
                rows = row_cache[page_index] = chain[page_index].read_rows()
            row = rows[slot] if slot < len(rows) else None
            if row is None:
                results[rid] = self.read_latest_fast(rid, data_columns,
                                                     txn_id)
                continue
            if is_null(row[key_physical]):
                results[rid] = DELETED if ind != NULL_RID else None
                continue
            results[rid] = {column: row[NUM_METADATA_COLUMNS + column]
                            for column in data_columns}

    def read_latest_values(self, rids: Sequence[int], data_column: int,
                           txn_id: int | None = None) -> list[Any]:
        """Latest-committed values of one column, dict-free.

        The keyed-aggregate hot path (``Query.sum`` over a small key
        range): same visibility classification as
        :meth:`read_latest_many`, but invisible and deleted records are
        simply skipped and each visible value is appended raw — no
        ``{column: value}`` framing, no zip, no per-record result dict.
        Values may include ∅ (a visible record whose column was never
        materialised); callers skip those like any other ∅.
        """
        if not self.config.batched_reads:
            values: list[Any] = []
            for rid in rids:
                result = self.read_latest_fast(rid, (data_column,), txn_id)
                if result is None or result is DELETED:
                    continue
                values.append(result[data_column])
            return values
        range_size = self.config.update_range_size
        groups: dict[int, list[int]] = {}
        for rid in rids:
            if not is_base_rid(rid):
                raise StorageError("%d is not a base RID" % rid)
            groups.setdefault((rid - 1) // range_size, []).append(rid)
        records_per_page = self._records_per_page
        key_physical = NUM_METADATA_COLUMNS + self.schema.key_index
        physical = NUM_METADATA_COLUMNS + data_column
        directory = self.page_directory
        values = []
        for range_id, group in groups.items():
            update_range = self.ranges.get(range_id)
            if update_range is None:
                raise KeyNotFoundError(
                    "base rid %d not allocated" % group[0])
            if not update_range.merged:
                self._unmerged_values(update_range, group, data_column,
                                      txn_id, values)
                continue
            if self._layout is Layout.ROW:
                self._merged_row_values(update_range, group, data_column,
                                        txn_id, values)
                continue
            # Snapshot the TPS before resolving chains (the PR-1 rule).
            tps = update_range.tps_rid
            tombstones = set(update_range.base_tombstones)
            key_chain = directory.base_chain(range_id, key_physical)
            data_chain = directory.base_chain(range_id, physical)
            indirection = update_range.indirection
            start_rid = update_range.start_rid
            for rid in group:
                offset = rid - start_rid
                ind = indirection.read(offset)
                page_index, slot = divmod(offset, records_per_page)
                dirty = (ind != NULL_RID and not tps_applied(tps, ind)) \
                    or offset in tombstones \
                    or data_chain[page_index].tps_rid \
                    != key_chain[page_index].tps_rid  # Lemma 3
                if dirty:
                    if txn_id is None and offset not in tombstones:
                        # The allocation-free single-column walk — no
                        # per-record dict for the patch path either.
                        value = self.latest_column_value(update_range,
                                                         offset,
                                                         data_column)
                        if value is not None and value is not DELETED:
                            values.append(value)
                        continue
                    result = self.read_latest_fast(rid, (data_column,),
                                                   txn_id)
                    if result is None or result is DELETED:
                        continue
                    values.append(result[data_column])
                    continue
                key_page = key_chain[page_index]
                if is_null(key_page.read_slot(slot)):
                    continue  # merged delete or hole
                values.append(data_chain[page_index].read_slot(slot))
        return values

    def _unmerged_values(self, update_range: UpdateRange,
                         group: Sequence[int], data_column: int,
                         txn_id: int | None, values: list[Any]) -> None:
        """Dict-free single-column reads of an unmerged range.

        Never-updated records read one cell straight from the insert
        tails (page lists hoisted once); updated records take the
        allocation-free :meth:`latest_column_value` walk (the exact
        per-record fallback when *txn_id* is given). Invisible and
        deleted records are skipped, like every value reader.
        """
        segment = update_range.insert_range.segment
        indirection = update_range.indirection
        start_rid = update_range.start_rid
        delta = start_rid - update_range.insert_range.start_rid
        capacity = segment.page_capacity
        key_physical = NUM_METADATA_COLUMNS + self.schema.key_index
        physical = NUM_METADATA_COLUMNS + data_column
        row_layout = self._layout is Layout.ROW
        if row_layout:
            row_pages = segment.row_pages()
            row_cache: dict[int, list] = {}
        else:
            page_lists = {
                column: segment.pages_for_column(column)
                for column in (START_TIME_COLUMN, key_physical, physical)
            }

            def cell(column: int, insert_offset: int) -> Any:
                pages = page_lists[column]
                page_index, slot = divmod(insert_offset, capacity)
                if page_index >= len(pages):
                    return NULL
                value = pages[page_index].peek_slot(slot)
                return NULL if value is UNWRITTEN else value

        for rid in group:
            offset = rid - start_rid
            if indirection.read(offset) != NULL_RID:
                if txn_id is None:
                    value = self.latest_column_value(update_range, offset,
                                                     data_column)
                    if value is not None and value is not DELETED:
                        values.append(value)
                    continue
                result = self.read_latest_fast(rid, (data_column,), txn_id)
                if result is not None and result is not DELETED:
                    values.append(result[data_column])
                continue
            insert_offset = delta + offset
            if insert_offset < segment.compressed_upto \
                    or segment.is_tombstone(insert_offset):
                result = self.read_latest_fast(rid, (data_column,), txn_id)
                if result is not None and result is not DELETED:
                    values.append(result[data_column])
                continue
            if row_layout:
                page_index, slot = divmod(insert_offset, capacity)
                rows = row_cache.get(page_index)
                if rows is None:
                    rows = row_cache[page_index] = \
                        row_pages[page_index].read_rows() \
                        if page_index < len(row_pages) else []
                row = rows[slot] if slot < len(rows) else None
                if row is None:
                    raise KeyNotFoundError(
                        "base rid %d has no record" % rid)
                start_cell = row[START_TIME_COLUMN]
                key_value = row[key_physical]
            else:
                start_cell = cell(START_TIME_COLUMN, insert_offset)
                if is_null(start_cell):
                    raise KeyNotFoundError(
                        "base rid %d has no record" % rid)
                key_value = cell(key_physical, insert_offset)
            own_write = txn_id is not None \
                and start_cell == (TXN_ID_FLAG | txn_id)
            if (not own_write
                    and self.committed_time(start_cell) is None) \
                    or is_null(key_value):
                continue
            values.append(row[physical] if row_layout
                          else cell(physical, insert_offset))

    def _merged_row_values(self, update_range: UpdateRange,
                           group: Sequence[int], data_column: int,
                           txn_id: int | None,
                           values: list[Any]) -> None:
        """Dict-free single-column reads of a merged row-layout range.

        Large groups (full-range scans) classify clean/dirty through
        one dirty patch-set snapshot — a set lookup per record instead
        of an indirection read + TPS compare, and over-patching is
        always safe (the walk is exact). Small keyed groups keep the
        per-record indirection check, which beats snapshotting a
        potentially large patch-set for a handful of rids.
        """
        tps = update_range.tps_rid
        tombstones = set(update_range.base_tombstones)
        patch = self._scan_patch_offsets(update_range) \
            if len(group) * 4 >= update_range.size else None
        chain = self.page_directory.base_chain(update_range.range_id,
                                               ROW_CHAIN_COLUMN)
        indirection = update_range.indirection
        start_rid = update_range.start_rid
        records_per_page = self._records_per_page
        key_physical = NUM_METADATA_COLUMNS + self.schema.key_index
        physical = NUM_METADATA_COLUMNS + data_column
        row_cache: dict[int, list] = {}
        for rid in group:
            offset = rid - start_rid
            if patch is not None:
                dirty = offset in patch or offset in tombstones
            else:
                ind = indirection.read(offset)
                dirty = (ind != NULL_RID and not tps_applied(tps, ind)) \
                    or offset in tombstones
            row = None
            if chain is not None and not dirty:
                page_index, slot = divmod(offset, records_per_page)
                rows = row_cache.get(page_index)
                if rows is None:
                    rows = row_cache[page_index] = \
                        chain[page_index].read_rows()
                row = rows[slot] if slot < len(rows) else None
            if row is None:  # dirty, tombstone, or mid-install chain
                if txn_id is None and offset not in tombstones:
                    value = self.latest_column_value(update_range, offset,
                                                     data_column)
                    if value is not None and value is not DELETED:
                        values.append(value)
                    continue
                result = self.read_latest_fast(rid, (data_column,), txn_id)
                if result is not None and result is not DELETED:
                    values.append(result[data_column])
                continue
            if is_null(row[key_physical]):
                continue  # merged delete or hole
            values.append(row[physical])

    def read_range_values(self, update_range: UpdateRange,
                          data_column: int,
                          txn_id: int | None = None) -> list[Any]:
        """Dict-free single-column values of one whole update range.

        The row plane's full-range driver for single-column aggregates
        (row layout, unmerged insert ranges, vectorisation off): no rid
        lists, no per-rid grouping — one offset loop with patch-set
        classification (a set lookup per record; over-patching is safe
        because the walk is exact), base values read straight from the
        hoisted pages/rows, dirty records through the
        :meth:`latest_column_value` walk. Invisible, deleted, and
        never-written slots are skipped.
        """
        values: list[Any] = []
        if not update_range.merged:
            self._unmerged_range_values(update_range, data_column, txn_id,
                                        values)
            return values
        if self._layout is Layout.ROW:
            self._merged_row_range_values(update_range, data_column,
                                          txn_id, values)
            return values
        # Merged columnar without slices (vectorisation off/declined).
        patch = self._scan_patch_offsets(update_range)
        tombstones = update_range.base_tombstones
        directory = self.page_directory
        key_physical = NUM_METADATA_COLUMNS + self.schema.key_index
        key_chain = directory.base_chain(update_range.range_id,
                                         key_physical)
        data_chain = directory.base_chain(
            update_range.range_id, NUM_METADATA_COLUMNS + data_column)
        records_per_page = self._records_per_page
        for offset in range(update_range.size):
            if offset in tombstones:
                continue
            page_index, slot = divmod(offset, records_per_page)
            walk = offset in patch or key_chain is None \
                or data_chain is None \
                or data_chain[page_index].tps_rid \
                != key_chain[page_index].tps_rid  # Lemma 3
            if walk:
                self._append_walk_value(update_range, offset, data_column,
                                        txn_id, values)
                continue
            if is_null(key_chain[page_index].read_slot(slot)):
                continue  # merged delete or hole
            values.append(data_chain[page_index].read_slot(slot))
        return values

    def _append_walk_value(self, update_range: UpdateRange, offset: int,
                           data_column: int, txn_id: int | None,
                           values: list[Any]) -> None:
        """Append one record's visible value via the exact walk."""
        if txn_id is None:
            value = self.latest_column_value(update_range, offset,
                                             data_column)
            if value is not None and value is not DELETED:
                values.append(value)
            return
        result = self.read_latest_fast(update_range.start_rid + offset,
                                       (data_column,), txn_id)
        if result is not None and result is not DELETED:
            values.append(result[data_column])

    def _merged_row_range_values(self, update_range: UpdateRange,
                                 data_column: int, txn_id: int | None,
                                 values: list[Any]) -> None:
        """Full-range row-layout values: whole-page row slices."""
        patch = self._scan_patch_offsets(update_range)
        tombstones = update_range.base_tombstones
        chain = self.page_directory.base_chain(update_range.range_id,
                                               ROW_CHAIN_COLUMN)
        key_physical = NUM_METADATA_COLUMNS + self.schema.key_index
        physical = NUM_METADATA_COLUMNS + data_column
        size = update_range.size
        offset = 0
        for page in chain if chain is not None else ():
            for row in page.read_rows():
                if offset >= size:
                    return
                current, offset = offset, offset + 1
                if current in tombstones:
                    continue
                if current in patch or row is None:
                    if row is None and current not in patch:
                        continue  # never written
                    self._append_walk_value(update_range, current,
                                            data_column, txn_id, values)
                    continue
                if is_null(row[key_physical]):
                    continue  # merged delete or hole
                values.append(row[physical])
        for current in range(offset, size):  # mid-install chain fallback
            if current in tombstones:
                continue
            self._append_walk_value(update_range, current, data_column,
                                    txn_id, values)

    def _unmerged_range_values(self, update_range: UpdateRange,
                               data_column: int, txn_id: int | None,
                               values: list[Any]) -> None:
        """Full-range values of an unmerged (insert-segment) range."""
        patch = self._scan_patch_offsets(update_range)
        segment = update_range.insert_range.segment
        delta = update_range.start_rid - update_range.insert_range.start_rid
        capacity = segment.page_capacity
        key_physical = NUM_METADATA_COLUMNS + self.schema.key_index
        physical = NUM_METADATA_COLUMNS + data_column
        row_layout = self._layout is Layout.ROW
        if row_layout:
            row_pages = segment.row_pages()
            for offset in range(update_range.size):
                insert_offset = delta + offset
                if offset in patch \
                        or insert_offset < segment.compressed_upto:
                    # The exact walk owns patched records and the
                    # compressed-region edge case.
                    self._append_walk_value(update_range, offset,
                                            data_column, txn_id, values)
                    continue
                if segment.is_tombstone(insert_offset):
                    continue
                page_index, slot = divmod(insert_offset, capacity)
                row = row_pages[page_index].read_row(slot) \
                    if page_index < len(row_pages) \
                    and row_pages[page_index].is_written(slot) else None
                if row is None:
                    continue  # never written
                start_cell = row[START_TIME_COLUMN]
                own_write = txn_id is not None \
                    and start_cell == (TXN_ID_FLAG | txn_id)
                if (not own_write
                        and self.committed_time(start_cell) is None) \
                        or is_null(row[key_physical]):
                    continue
                values.append(row[physical])
            return
        # Columnar: iterate page-at-a-time with the page lists hoisted
        # — no per-cell closure, one divmod per record, the unwritten
        # suffix of the half-full last insert range skipped wholesale.
        start_pages = segment.pages_for_column(START_TIME_COLUMN)
        key_pages = segment.pages_for_column(key_physical)
        data_pages = segment.pages_for_column(physical)
        unwritten = UNWRITTEN
        for offset in range(update_range.size):
            insert_offset = delta + offset
            if offset in patch or insert_offset < segment.compressed_upto:
                self._append_walk_value(update_range, offset, data_column,
                                        txn_id, values)
                continue
            if segment.is_tombstone(insert_offset):
                continue
            page_index, slot = divmod(insert_offset, capacity)
            if page_index >= len(start_pages):
                continue  # never written
            start_cell = start_pages[page_index].peek_slot(slot)
            if start_cell is unwritten:
                continue  # never written
            own_write = txn_id is not None \
                and start_cell == (TXN_ID_FLAG | txn_id)
            if not own_write and self.committed_time(start_cell) is None:
                continue
            key_value = key_pages[page_index].peek_slot(slot) \
                if page_index < len(key_pages) else NULL
            if key_value is unwritten or is_null(key_value):
                continue
            value = data_pages[page_index].peek_slot(slot) \
                if page_index < len(data_pages) else NULL
            values.append(NULL if value is unwritten else value)

    def read_column_slices(self, update_range: UpdateRange,
                           data_columns: Sequence[int],
                           ) -> RangeColumnSlices | None:
        """Whole-range NumPy column slices for the vectorised scan plane.

        Stitches each requested column's merged base pages into one
        contiguous int64 array per column (plus a per-column ∅ mask)
        and classifies every range offset as *valid* (the base value is
        the latest committed version), *dirty* (unmerged tail activity,
        a page that declined its NumPy view, or a Lemma-3 TPS mismatch
        — patch through the per-record walk), or dead (tombstone /
        merged delete). Returns None when the range cannot serve slices
        at all: unmerged, row layout, or a missing chain.

        The dirty patch-set and TPS watermarks are snapshotted *before*
        any chain resolves (the PR-1 rule), so a concurrent merge can
        only over-patch — records are then re-read through the
        always-correct walk, never served stale. The stitched value
        arrays themselves are cached per (range, column) keyed on chain
        identity (:attr:`UpdateRange.slice_cache`) — chains are
        immutable tuples the merge swaps atomically, so a scan in the
        steady state pays only the per-scan validity/dirty masks, not a
        re-copy of every page.
        """
        if not update_range.merged or self._layout is Layout.ROW:
            return None
        patch = self._scan_patch_offsets(update_range)
        tombstones = set(update_range.base_tombstones)
        size = update_range.size
        records_per_page = self._records_per_page
        directory = self.page_directory
        range_id = update_range.range_id
        key_physical = NUM_METADATA_COLUMNS + self.schema.key_index
        key_chain = directory.base_chain(range_id, key_physical)
        if key_chain is None:
            return None
        chains = {}
        for data_column in data_columns:
            chain = directory.base_chain(
                range_id, NUM_METADATA_COLUMNS + data_column)
            if chain is None:
                return None
            chains[data_column] = chain
        key_entry = self._column_slice(
            update_range, self.schema.key_index, key_chain,
            liveness_fallback=True)
        valid = ~key_entry[2]  # fresh array; cached arrays stay read-only
        columns = {}
        for data_column in data_columns:
            entry = self._column_slice(update_range, data_column,
                                       chains[data_column])
            columns[data_column] = (entry[1], entry[2])
            patch.update(entry[3])
        # Lemma 3 cross-column check against the *current* in-page TPS
        # (a decoupled per-column merge swaps some chains before
        # others): any mismatched page's records are patched instead.
        for page_index, key_page in enumerate(key_chain):
            seen_tps = key_page.tps_rid
            for data_column in data_columns:
                if chains[data_column][page_index].tps_rid != seen_tps:
                    start = page_index * records_per_page
                    patch.update(range(start, start + records_per_page))
                    break
        if tombstones:
            valid[list(tombstones)] = False
            patch.difference_update(tombstones)
        dirty = sorted(offset for offset in patch if offset < size)
        if dirty:
            valid[dirty] = False
        return RangeColumnSlices(start_rid=update_range.start_rid,
                                 size=size, columns=columns,
                                 valid=valid, rids=update_range.rid_array(),
                                 dirty=dirty)

    def _column_slice(self, update_range: UpdateRange, data_column: int,
                      chain: tuple, *, liveness_fallback: bool = False,
                      ) -> tuple:
        """One column's cached stitch:
        ``(chain, values, nulls, declined)``.

        Rebuilds only when the directory serves a different chain tuple
        than the cached one (i.e. after a merge swap); the merge's
        in-place lineage advance on untouched columns changes no
        values, so identity is a sufficient key. ``declined`` holds the
        offsets of pages without a NumPy view (non-int values) — their
        slice bytes are placeholders and every record on them must be
        patched per-record. *liveness_fallback* (the key column) fills
        the ∅ mask with a Python pass over declining pages, so record
        liveness stays available even for non-int key domains.

        The returned arrays are shared across scans: callers must treat
        them as read-only.
        """
        cached = update_range.slice_cache.get(data_column)
        if cached is not None and cached[0] is chain:
            self._stat_slice_hits.add()
            return cached
        self._stat_slice_misses.add()
        size = update_range.size
        records_per_page = self._records_per_page
        values = np.zeros(size, dtype=np.int64)
        nulls = np.zeros(size, dtype=bool)
        declined: set[int] = set()
        for page_index, page in enumerate(chain):
            start = page_index * records_per_page
            state = page.as_numpy_masked() \
                if hasattr(page, "as_numpy_masked") else None
            if state is not None:
                array, page_valid = state
                end = start + len(array)
                values[start:end] = array
                nulls[start:end] = ~page_valid
                continue
            declined.update(
                range(start, min(start + records_per_page, size)))
            if liveness_fallback:
                for slot in range(page.num_records):
                    nulls[start + slot] = is_null(page.read_slot(slot))
        entry = (chain, values, nulls, frozenset(declined))
        # Plain dict store: entries are immutable and the build is a
        # pure function of the chain, so a racing rebuild is benign.
        update_range.slice_cache[data_column] = entry
        return entry

    def read_version_slices(self, update_range: UpdateRange,
                            data_columns: Sequence[int], as_of: int,
                            ) -> RangeColumnSlices | None:
        """Column slices for a snapshot scan at time *as_of*.

        The **version-horizon plane**: like
        :meth:`read_column_slices`, but ``valid`` marks the offsets
        whose base-page values are the version *visible at as_of* —
        decided per record from the merged Start Time and Last Updated
        Time column slices (both hold plain commit times in merged
        pages):

        * ``start > as_of`` — inserted after the snapshot: invisible,
          dropped outright (no walk);
        * ``start <= as_of < last_updated`` — the base consolidation
          is newer than the snapshot (a *straddler*, including merged
          deletes whose delete time postdates ``as_of``): the
          :meth:`assemble_version` walk resurrects the older version
          from the lineage chain;
        * ``start <= as_of`` and ``last_updated <= as_of`` — the base
          value is the visible version, served array-at-a-time.

        Records with unmerged tail activity (the patch-set) normally
        join the walk — except when the range's version horizon proves
        the partition **frozen** at ``as_of``: every consolidated
        commit time is ``<= as_of`` (``merged_max_time``) and every
        unmerged record's commit time is ``> as_of``
        (``unmerged_min_time``), so even dirty records serve straight
        from the base slices. The horizon, the patch-set, and the
        Lemma-3 cross-chain TPS checks (metadata chains included, so a
        decoupled per-column merge can never smuggle a too-new value
        past the Last Updated slice) are all conservative: a stale
        summary only sends more records to the always-correct walk.

        Returns None when the range cannot serve slices at all
        (unmerged, row layout, or a missing chain); the caller then
        falls back to the per-record row plane.
        """
        if not update_range.merged or self._layout is Layout.ROW:
            return None
        patch, unmerged_min, merged_max = update_range.horizon_snapshot()
        if not self.config.incremental_dirty_sets:
            patch = self._tail_patch_offsets(update_range,
                                             update_range.merged_upto)
        tombstones = set(update_range.base_tombstones)
        size = update_range.size
        records_per_page = self._records_per_page
        directory = self.page_directory
        range_id = update_range.range_id
        key_physical = NUM_METADATA_COLUMNS + self.schema.key_index
        key_chain = directory.base_chain(range_id, key_physical)
        start_chain = directory.base_chain(range_id, START_TIME_COLUMN)
        last_chain = directory.base_chain(range_id, LAST_UPDATED_COLUMN)
        if key_chain is None or start_chain is None or last_chain is None:
            return None
        chains = {}
        for data_column in data_columns:
            chain = directory.base_chain(
                range_id, NUM_METADATA_COLUMNS + data_column)
            if chain is None:
                return None
            chains[data_column] = chain
        key_entry = self._column_slice(
            update_range, self.schema.key_index, key_chain,
            liveness_fallback=True)
        start_entry = self._column_slice(
            update_range, ("meta", START_TIME_COLUMN), start_chain)
        last_entry = self._column_slice(
            update_range, ("meta", LAST_UPDATED_COLUMN), last_chain)
        walk: set[int] = set(start_entry[3])
        walk.update(last_entry[3])
        columns = {}
        for data_column in data_columns:
            entry = self._column_slice(update_range, data_column,
                                       chains[data_column])
            columns[data_column] = (entry[1], entry[2])
            walk.update(entry[3])
        # Lemma 3 across every consulted chain — the metadata chains
        # too: a decoupled per-column merge swaps data chains without
        # rebuilding Last Updated, and the TPS mismatch is the only
        # thing marking those pages stale for a snapshot read.
        secondary = [start_chain, last_chain]
        secondary.extend(chains.values())
        for page_index, key_page in enumerate(key_chain):
            seen_tps = key_page.tps_rid
            for chain in secondary:
                if chain[page_index].tps_rid != seen_tps:
                    page_start = page_index * records_per_page
                    walk.update(range(page_start,
                                      min(page_start + records_per_page,
                                          size)))
                    break
        frozen = merged_max <= as_of and (
            not patch or (unmerged_min is not None
                          and as_of < unmerged_min))
        if not frozen:
            walk.update(patch)
        start_vals, start_nulls = start_entry[1], start_entry[2]
        last_vals, last_nulls = last_entry[1], last_entry[2]
        started = (start_vals <= as_of) & ~start_nulls
        settled = (last_vals <= as_of) & ~last_nulls
        visible = started & settled & ~key_entry[2]
        if tombstones:
            visible[list(tombstones)] = False
            walk.difference_update(tombstones)
        walk.update(int(offset)
                    for offset in np.flatnonzero(started & ~settled))
        # A record inserted after as_of has no visible version at all
        # — not even a walk can find one — so only started (or
        # start-unreadable) offsets go to the walk list.
        dirty = sorted(offset for offset in walk if offset < size
                       and (started[offset] or start_nulls[offset]))
        if dirty:
            visible[dirty] = False
        return RangeColumnSlices(start_rid=update_range.start_rid,
                                 size=size, columns=columns,
                                 valid=visible,
                                 rids=update_range.rid_array(),
                                 dirty=dirty)

    def read_range_column_total(self, update_range: UpdateRange,
                                data_column: int,
                                ) -> tuple[int, list[int]] | None:
        """Unfiltered SUM of one merged columnar range, page-total wise.

        Returns ``(clean_total, dirty_offsets)``: the sum of the
        column's base values over every live, clean record — computed
        from the per-page cached totals
        (:meth:`~repro.core.page.Page.masked_total`) minus the
        contributions of dirty/tombstoned/∅-key records — plus the
        offsets the caller must patch through the per-record walk.
        None when the range cannot serve the fast path (unmerged, row
        layout, missing chain).

        This is the scan executor's hot path for ``Table.scan_sum``:
        the reductions ran once at page-view build time, so the steady
        state makes **zero** NumPy calls — under write contention every
        NumPy call is a GIL round-trip the updater threads convoy on,
        and this keeps scan cost proportional to the unmerged-update
        count (Figure 8), not to kernel-launch overhead. Pages without
        a view and Lemma-3 TPS mismatches degrade to the per-record
        walk, page by page. The dirty patch-set and TPS watermarks are
        snapshotted before chain resolution (the PR-1 rule), so racing
        merges can only over-patch.
        """
        if not update_range.merged or self._layout is Layout.ROW:
            return None
        if self.config.incremental_dirty_sets:
            # Column-filtered patch-set: only records whose unmerged
            # tail may have changed *this* column owe a subtraction
            # and a walk — the rest of the dirty records' base values
            # are still the latest committed ones under cumulative
            # updates, so they stay inside the clean page totals.
            column_bit = 1 << (self.schema.num_columns - 1 - data_column)
            patch = set(update_range.dirty_offsets_for_column(column_bit))
        else:
            patch = self._scan_patch_offsets(update_range)
        tombstones = update_range.base_tombstones
        size = update_range.size
        records_per_page = self._records_per_page
        directory = self.page_directory
        range_id = update_range.range_id
        key_physical = NUM_METADATA_COLUMNS + self.schema.key_index
        key_chain = directory.base_chain(range_id, key_physical)
        data_chain = directory.base_chain(
            range_id, NUM_METADATA_COLUMNS + data_column)
        if key_chain is None or data_chain is None:
            return None
        total = 0
        dead: set[int] = set(tombstones)
        skip_correction: set[int] = set()
        for page_index, page in enumerate(key_chain):
            start = page_index * records_per_page
            data_page = data_chain[page_index]
            key_total = page.masked_total() \
                if hasattr(page, "masked_total") else None
            data_total = data_page.masked_total() \
                if hasattr(data_page, "masked_total") else None
            if data_total is None or data_page.tps_rid != page.tps_rid:
                # No NumPy view (non-int values) or Lemma 3 fired: the
                # page's total is never added, so its records go to the
                # walk without a correction.
                span = range(start, min(start + records_per_page, size))
                patch.update(span)
                skip_correction.update(span)
                continue
            total += data_total[0]
            if key_total is not None:
                # ∅ keys are merged deletes / holes: subtract below.
                dead.update(start + slot for slot in key_total[1])
            else:
                # Non-int key domain: a Python liveness pass.
                for slot in range(page.num_records):
                    if is_null(page.read_slot(slot)):
                        dead.add(start + slot)
        dirty = sorted(offset for offset in patch
                       if offset < size and offset not in tombstones)
        for offset in dead.union(dirty):
            if offset in skip_correction:
                continue
            page = data_chain[offset // records_per_page]
            value = page.read_slot(offset % records_per_page)
            if not is_null(value):
                total -= value
        return total, dirty

    def read_latest(self, rid: int,
                    data_columns: Sequence[int] | None = None,
                    predicate: VisibilityPredicate | None = None,
                    ) -> dict[int, Any] | Deleted | None:
        """Read the visible version of *rid* (2-hop fast path).

        Returns ``{data_column: value}`` for the requested columns (all
        when *data_columns* is None), :data:`DELETED` when the visible
        version is a delete, or None when no version is visible under
        *predicate* (default: latest committed).
        """
        if predicate is None:
            predicate = visible_latest_committed
        update_range, offset = self.locate(rid)
        if not self.base_record_exists(update_range, offset):
            raise KeyNotFoundError("base rid %d has no record" % rid)
        if data_columns is None:
            data_columns = range(self.schema.num_columns)
        indirection = update_range.indirection.read(offset)

        if indirection == NULL_RID:
            return self._read_base_version(update_range, offset,
                                           data_columns, predicate)

        if update_range.merged \
                and tps_applied(update_range.tps_rid, indirection):
            # 1 hop: every update is consolidated into the base pages.
            try:
                result = self._read_merged_current(
                    update_range, offset, data_columns, predicate)
                if result is not None:
                    return result
                # The merged state is too new for this predicate (as-of
                # reads): walk the chain for the older version.
            except InconsistentReadError:
                # Lemma 3 fired (decoupled per-column merge in flight):
                # repair via the always-correct chain walk (Theorem 2).
                pass
        return self.assemble_version(rid, data_columns, predicate)

    def _read_base_version(self, update_range: UpdateRange, offset: int,
                           data_columns: Sequence[int],
                           predicate: VisibilityPredicate,
                           ) -> dict[int, Any] | None:
        start_cell = self._read_base_cell(update_range, offset,
                                          START_TIME_COLUMN)
        if not predicate(self._resolver(predicate)(start_cell)):
            return None
        key_physical = NUM_METADATA_COLUMNS + self.schema.key_index
        physicals = [key_physical]
        physicals.extend(NUM_METADATA_COLUMNS + column
                         for column in data_columns)
        cells = self._read_base_values(update_range, offset, physicals)
        if is_null(cells[0]):
            # A merged hole (aborted insert) — never a visible record.
            return None
        return {column: cells[i + 1]
                for i, column in enumerate(data_columns)}

    def _read_merged_current(self, update_range: UpdateRange, offset: int,
                             data_columns: Sequence[int],
                             predicate: VisibilityPredicate,
                             ) -> dict[int, Any] | Deleted | None:
        key_physical = NUM_METADATA_COLUMNS + self.schema.key_index
        page_index = offset // self._records_per_page
        slot = offset % self._records_per_page
        if self._layout is Layout.ROW:
            last_updated = self._read_base_cell(update_range, offset,
                                                LAST_UPDATED_COLUMN)
            if not predicate(self._resolver(predicate)(last_updated)):
                return None
            chain = self.page_directory.base_chain(update_range.range_id,
                                                   ROW_CHAIN_COLUMN)
            row = chain[page_index].read_row(slot)
            if is_null(row[key_physical]):
                return DELETED
            return {column: row[NUM_METADATA_COLUMNS + column]
                    for column in data_columns}
        directory = self.page_directory
        range_id = update_range.range_id
        key_page = directory.base_chain(range_id, key_physical)[page_index]
        seen_tps = key_page.tps_rid
        # The Last Updated page joins the Lemma-3 cross-check: a merge
        # swaps chains one column at a time, and a stale Last Updated
        # cell paired with a freshly consolidated data page would let
        # a snapshot reader accept a too-new value (one leg of a
        # transfer — the conservation stress caught exactly this).
        last_page = directory.base_chain(range_id,
                                         LAST_UPDATED_COLUMN)[page_index]
        if last_page.tps_rid != seen_tps:
            raise InconsistentReadError(
                "TPS mismatch on Last Updated: %d vs %d"
                % (last_page.tps_rid, seen_tps))
        last_updated = last_page.read_slot(slot)
        if not predicate(self._resolver(predicate)(last_updated)):
            return None
        if is_null(key_page.read_slot(slot)):
            return DELETED
        values: dict[int, Any] = {}
        for data_column in data_columns:
            page = directory.base_chain(
                range_id, NUM_METADATA_COLUMNS + data_column)[page_index]
            if page.tps_rid != seen_tps:
                # Lemma 3: detectable TPS mismatch across columns.
                raise InconsistentReadError(
                    "TPS mismatch across columns: %d vs %d"
                    % (page.tps_rid, seen_tps))
            values[data_column] = page.read_slot(slot)
        return values

    def assemble_version(self, rid: int, data_columns: Sequence[int],
                         predicate: VisibilityPredicate,
                         *, skip_newest: int = 0,
                         ) -> dict[int, Any] | Deleted | None:
        """General chain-walk read: correct for any snapshot/version.

        Selects the newest chain entry visible under *predicate*
        (optionally skipping *skip_newest* visible versions, for
        relative-version reads), then assembles column values walking
        the full lineage newest→oldest; snapshot records supply original
        values for columns whose updates are all newer than the target
        (this is why Lemma 2 requires them). Falls back to base pages
        only for columns with no tail entry at all, which the merge
        never changes — so the fallback is always safe.
        """
        update_range, offset = self.locate(rid)
        indirection = update_range.indirection.read(offset)
        num_columns = self.schema.num_columns
        resolve = self._resolver(predicate)

        # Phase 1: pick the target version.
        target_is_base = False
        target_rid = None
        to_skip = skip_newest
        cursor = indirection
        while is_tail_rid(cursor):
            segment, tail_offset = update_range.locate_tail(cursor)
            encoding = SchemaEncoding.from_int(
                num_columns,
                segment.record_cell(tail_offset, SCHEMA_ENCODING_COLUMN))
            if not segment.is_tombstone(tail_offset) \
                    and not encoding.is_snapshot:
                resolved = resolve(
                    segment.record_cell(tail_offset, START_TIME_COLUMN))
                if predicate(resolved):
                    if to_skip == 0:
                        target_rid = cursor
                        break
                    to_skip -= 1
            cursor = segment.record_cell(tail_offset, INDIRECTION_COLUMN)
        if target_rid is None:
            base_start = self._read_base_cell(update_range, offset,
                                              START_TIME_COLUMN)
            if not predicate(resolve(base_start)):
                return None
            target_is_base = True

        if not target_is_base:
            segment, tail_offset = update_range.locate_tail(target_rid)
            encoding = SchemaEncoding.from_int(
                num_columns,
                segment.record_cell(tail_offset, SCHEMA_ENCODING_COLUMN))
            if not encoding.any_updated and not encoding.is_snapshot:
                return DELETED

        # Phase 2: assemble values newest→oldest along the full chain.
        # A regular record contributes values only when it is visible
        # *and* at least `skip_newest` visible versions precede it in
        # the walk (so relative-version reads exclude newer versions).
        remaining = set(data_columns)
        values: dict[int, Any] = {}
        if not remaining:
            return values
        cursor = indirection
        visible_seen = 0
        while is_tail_rid(cursor) and remaining:
            segment, tail_offset = update_range.locate_tail(cursor)
            encoding = SchemaEncoding.from_int(
                num_columns,
                segment.record_cell(tail_offset, SCHEMA_ENCODING_COLUMN))
            backpointer = segment.record_cell(tail_offset,
                                              INDIRECTION_COLUMN)
            if segment.is_tombstone(tail_offset):
                cursor = backpointer
                continue
            if encoding.is_snapshot:
                # Snapshot = original values; valid whenever no visible
                # regular update of the column precedes it in the walk.
                for data_column in list(remaining):
                    if encoding.is_updated(data_column):
                        values[data_column] = segment.record_cell(
                            tail_offset,
                            self.schema.physical_index(data_column))
                        remaining.discard(data_column)
            else:
                resolved = resolve(
                    segment.record_cell(tail_offset, START_TIME_COLUMN))
                if predicate(resolved):
                    visible_seen += 1
                    if visible_seen > skip_newest:
                        for data_column in list(remaining):
                            if encoding.is_updated(data_column):
                                values[data_column] = segment.record_cell(
                                    tail_offset,
                                    self.schema.physical_index(data_column))
                                remaining.discard(data_column)
            cursor = backpointer
        for data_column in remaining:
            values[data_column] = self._read_base_cell(
                update_range, offset, self.schema.physical_index(data_column))
        return values

    def visible_version_rid(self, rid: int,
                            predicate: VisibilityPredicate) -> int | None:
        """RID of the version of *rid* visible under *predicate*.

        Returns the tail RID of the newest visible tail record, the base
        RID itself when only the base version is visible, or None when
        no version is visible. This is the quantity OCC validation
        compares between begin time and commit time (Section 5.1.1,
        *validate reads*).
        """
        update_range, offset = self.locate(rid)
        cursor = update_range.indirection.read(offset)
        num_columns = self.schema.num_columns
        resolve = self._resolver(predicate)
        while is_tail_rid(cursor):
            segment, tail_offset = update_range.locate_tail(cursor)
            encoding = SchemaEncoding.from_int(
                num_columns,
                segment.record_cell(tail_offset, SCHEMA_ENCODING_COLUMN))
            if not segment.is_tombstone(tail_offset) \
                    and not encoding.is_snapshot:
                resolved = resolve(
                    segment.record_cell(tail_offset, START_TIME_COLUMN))
                if predicate(resolved):
                    return cursor
            cursor = segment.record_cell(tail_offset, INDIRECTION_COLUMN)
        if not self.base_record_exists(update_range, offset):
            return None
        base_start = self._read_base_cell(update_range, offset,
                                          START_TIME_COLUMN)
        if predicate(resolve(base_start)):
            return rid
        return None

    def read_versioned(self, rid: int,
                       data_columns: Sequence[int] | None = None,
                       predicate: VisibilityPredicate | None = None,
                       ) -> tuple[int | None, dict[int, Any] | Deleted | None]:
        """Version-stamped read: ``(version_rid, values)`` in ONE walk.

        Returns the same version RID :meth:`visible_version_rid` would
        report plus the column values of exactly that version, both
        derived from a single chain traversal in which every record's
        visibility is resolved exactly once. This is what tracked OCC
        reads need: with two separate walks, a competing transaction
        flipping PRE_COMMIT→COMMITTED in between can pair a version RID
        with another version's values and let validation certify a
        stale read (the PR-1 lost-update bug). Only the chain head can
        be uncommitted (the write protocol admits one live writer per
        record), so resolving each record once makes the pair atomic.

        ``(None, None)`` when no version is visible under *predicate*;
        ``(tail_rid, DELETED)`` when the visible version is a delete.
        """
        if predicate is None:
            predicate = visible_latest_committed
        update_range, offset = self.locate(rid)
        if not self.base_record_exists(update_range, offset):
            raise KeyNotFoundError("base rid %d has no record" % rid)
        if data_columns is None:
            data_columns = range(self.schema.num_columns)
        num_columns = self.schema.num_columns
        remaining = set(data_columns)
        values: dict[int, Any] = {}
        version_rid: int | None = None
        resolve = self._resolver(predicate)
        cursor = update_range.indirection.read(offset)
        while is_tail_rid(cursor):
            segment, tail_offset = update_range.locate_tail(cursor)
            encoding = SchemaEncoding.from_int(
                num_columns,
                segment.record_cell(tail_offset, SCHEMA_ENCODING_COLUMN))
            backpointer = segment.record_cell(tail_offset,
                                              INDIRECTION_COLUMN)
            if segment.is_tombstone(tail_offset):
                cursor = backpointer
                continue
            if encoding.is_snapshot:
                # Original values: valid whenever every visible regular
                # update of the column is newer than the target.
                for data_column in list(remaining):
                    if encoding.is_updated(data_column):
                        values[data_column] = segment.record_cell(
                            tail_offset,
                            self.schema.physical_index(data_column))
                        remaining.discard(data_column)
            else:
                resolved = resolve(
                    segment.record_cell(tail_offset, START_TIME_COLUMN))
                if predicate(resolved):
                    if version_rid is None:
                        version_rid = cursor
                        if not encoding.any_updated:
                            return cursor, DELETED
                    for data_column in list(remaining):
                        if encoding.is_updated(data_column):
                            values[data_column] = segment.record_cell(
                                tail_offset,
                                self.schema.physical_index(data_column))
                            remaining.discard(data_column)
            if version_rid is not None and not remaining:
                return version_rid, values
            cursor = backpointer
        if version_rid is None:
            base_start = self._read_base_cell(update_range, offset,
                                              START_TIME_COLUMN)
            if not predicate(resolve(base_start)):
                return None, None
            version_rid = rid
        for data_column in remaining:
            values[data_column] = self._read_base_cell(
                update_range, offset, self.schema.physical_index(data_column))
        return version_rid, values

    def check_write_conflict(self, rid: int, txn_id: int | None) -> None:
        """The paper's second write check, in one chain walk.

        Caller holds the indirection latch. Raises
        :class:`~repro.errors.WriteWriteConflict` when the latest
        version belongs to a live competing transaction, and
        :class:`~repro.errors.RecordDeletedError` when the latest
        committed-or-own version is a delete.
        """
        update_range, offset = self.locate(rid)
        num_columns = self.schema.num_columns
        mask = (1 << num_columns) - 1
        snapshot_bit = 1 << num_columns
        cursor = update_range.indirection.read(offset)
        first = True
        while is_tail_rid(cursor):
            segment, tail_offset = update_range.locate_tail(cursor)
            encoding = segment.record_cell(tail_offset,
                                           SCHEMA_ENCODING_COLUMN)
            if not encoding & snapshot_bit:
                start_cell = segment.record_cell(tail_offset,
                                                 START_TIME_COLUMN)
                own = txn_id is not None \
                    and start_cell == (TXN_ID_FLAG | txn_id)
                committed = self._tail_committed_time(
                    segment, tail_offset, start_cell) is not None
                if first and not committed and not own \
                        and not segment.is_tombstone(tail_offset):
                    # Live writer from another transaction.
                    resolved = self.resolve_cell(start_cell)
                    if resolved.state in (TransactionState.ACTIVE,
                                          TransactionState.PRE_COMMIT):
                        self._stat_ww_conflicts.add()
                        raise WriteWriteConflict(
                            "record %d has uncommitted writer %r"
                            % (rid, resolved.txn_id))
                first = False
                if (committed or own) \
                        and not segment.is_tombstone(tail_offset):
                    if not encoding & mask:
                        raise RecordDeletedError(
                            "record %d is deleted" % rid)
                    return
            cursor = segment.record_cell(tail_offset, INDIRECTION_COLUMN)

    def latest_is_delete(self, rid: int) -> bool:
        """True when the newest committed version of *rid* is a delete.

        Lightweight walk used by the write protocol (delete check)
        instead of a full :meth:`read_latest`.
        """
        update_range, offset = self.locate(rid)
        num_columns = self.schema.num_columns
        mask = (1 << num_columns) - 1
        snapshot_bit = 1 << num_columns
        cursor = update_range.indirection.read(offset)
        while is_tail_rid(cursor):
            segment, tail_offset = update_range.locate_tail(cursor)
            encoding = segment.record_cell(tail_offset,
                                           SCHEMA_ENCODING_COLUMN)
            if not encoding & snapshot_bit \
                    and not segment.is_tombstone(tail_offset):
                committed = self._tail_committed_time(
                    segment, tail_offset,
                    segment.record_cell(tail_offset, START_TIME_COLUMN))
                if committed is not None:
                    return not encoding & mask
            cursor = segment.record_cell(tail_offset, INDIRECTION_COLUMN)
        return False

    def latest_column_value(self, update_range: UpdateRange, offset: int,
                            data_column: int) -> Any:
        """Latest committed value of one column (scan patch fast path).

        Returns the value, :data:`DELETED`, or None when no version is
        visible. Allocation-free: raw encoding ints, no predicates, no
        per-record dict — this is how the vectorised plane patches its
        dirty offsets for single-column aggregates. With cumulative
        updates (the default) the walk stops at the first committed
        regular record — its bitmap covers every column updated since
        the last merge, so a missing bit proves the base (merged) page
        already holds the latest committed value.
        """
        num_columns = self.schema.num_columns
        mask = (1 << num_columns) - 1
        snapshot_bit = 1 << num_columns
        column_bit = 1 << (num_columns - 1 - data_column)
        physical = NUM_METADATA_COLUMNS + data_column
        cumulative = self.config.cumulative_updates
        cursor = update_range.indirection.read(offset)
        while is_tail_rid(cursor):
            segment, tail_offset = update_range.locate_tail(cursor)
            encoding, start_cell, backpointer = segment.record_cells(
                tail_offset, _WALK_METADATA)
            if not encoding & snapshot_bit \
                    and not segment.is_tombstone(tail_offset):
                committed = self._tail_committed_time(
                    segment, tail_offset, start_cell)
                if committed is not None:
                    bits = encoding & mask
                    if not bits:
                        return DELETED
                    if bits & column_bit:
                        return segment.record_cell(tail_offset, physical)
                    if cumulative:
                        break  # base page is current for this column
            cursor = backpointer
        # Base fallback (inlined for the merged columnar common case —
        # this runs once per dirty record per scan, so the chain-lookup
        # arithmetic is paid exactly once here).
        if update_range.merged and self._layout is not Layout.ROW:
            if offset in update_range.base_tombstones:
                return None
            chains = self.range_chains(update_range)
            page_index, slot = divmod(offset, self._records_per_page)
            start_cell = chains[START_TIME_COLUMN][page_index] \
                .read_slot(slot)
            if start_cell & TXN_ID_FLAG \
                    and self.committed_time(start_cell) is None:
                return None
            return chains[physical][page_index].read_slot(slot)
        if not self.base_record_exists(update_range, offset):
            return None
        if self.committed_time(self._read_base_cell(
                update_range, offset, START_TIME_COLUMN)) is None:
            return None
        return self._read_base_cell(update_range, offset, physical)

    def version_column_value(self, update_range: UpdateRange, offset: int,
                             data_column: int, as_of: int) -> Any:
        """Value of one column in the version visible at *as_of*.

        The snapshot analogue of :meth:`latest_column_value`: returns
        the value, :data:`DELETED`, or None when no version is visible
        at *as_of*. Allocation-free — raw encoding ints, no predicate
        closures, no per-record dict — this is how the version-horizon
        plane patches its straddling/dirty offsets for single-column
        aggregates. One newest→oldest walk: the newest regular record
        with commit time ``<= as_of`` is the target version; a
        snapshot record passed *above* the target proves the column's
        first update postdates the target, so its original value is
        the answer (the Lemma-2 resurrection); below the target, chain
        order equals commit order (one live writer per record), so the
        first record carrying the column decides.
        """
        num_columns = self.schema.num_columns
        mask = (1 << num_columns) - 1
        snapshot_bit = 1 << num_columns
        column_bit = 1 << (num_columns - 1 - data_column)
        physical = NUM_METADATA_COLUMNS + data_column
        snap_value: Any = UNWRITTEN
        target_found = False
        cursor = update_range.indirection.read(offset)
        while is_tail_rid(cursor):
            segment, tail_offset = update_range.locate_tail(cursor)
            encoding = segment.record_cell(tail_offset,
                                           SCHEMA_ENCODING_COLUMN)
            if not segment.is_tombstone(tail_offset):
                if encoding & snapshot_bit:
                    if encoding & column_bit:
                        if target_found:
                            return segment.record_cell(tail_offset,
                                                       physical)
                        if snap_value is UNWRITTEN:
                            snap_value = segment.record_cell(tail_offset,
                                                             physical)
                elif not target_found:
                    committed = self._tail_committed_time_settled(
                        segment, tail_offset,
                        segment.record_cell(tail_offset,
                                            START_TIME_COLUMN))
                    if committed is not None and committed <= as_of:
                        bits = encoding & mask
                        if not bits:
                            return DELETED
                        if snap_value is not UNWRITTEN:
                            return snap_value
                        if bits & column_bit:
                            return segment.record_cell(tail_offset,
                                                       physical)
                        target_found = True  # walk on for the value
                elif encoding & column_bit:
                    return segment.record_cell(tail_offset, physical)
            cursor = segment.record_cell(tail_offset, INDIRECTION_COLUMN)
        if target_found:
            # No tail record ever carried the column: never updated,
            # and the merge never changes never-updated columns.
            return self._read_base_cell(update_range, offset, physical)
        if not self.base_record_exists(update_range, offset):
            return None
        committed = self.committed_time_settled(self._read_base_cell(
            update_range, offset, START_TIME_COLUMN))
        if committed is None or committed > as_of:
            return None
        if snap_value is not UNWRITTEN:
            return snap_value  # every update postdates as_of: original
        return self._read_base_cell(update_range, offset, physical)

    def read_range_version_values(self, update_range: UpdateRange,
                                  data_column: int,
                                  as_of: int) -> list[Any]:
        """Dict-free single-column snapshot values of one whole range.

        The snapshot analogue of :meth:`read_range_values` — the row
        plane's full-range driver for unfiltered single-column
        aggregates under ``as_of`` visibility: one offset loop, base
        cells read straight from the hoisted pages/rows with the
        Start Time / Last Updated cells deciding visibility per record
        (insert after *as_of* → skip; consolidation newer than
        *as_of* → the :meth:`version_column_value` walk; otherwise the
        base value serves), patch-set records walking their lineage.
        Invisible, deleted, and never-written slots are skipped.
        """
        values: list[Any] = []
        patch = self._scan_patch_offsets(update_range)
        size = update_range.size
        key_physical = NUM_METADATA_COLUMNS + self.schema.key_index
        physical = NUM_METADATA_COLUMNS + data_column

        def walk(offset: int) -> None:
            value = self.version_column_value(update_range, offset,
                                              data_column, as_of)
            if value is not None and value is not DELETED:
                values.append(value)

        if not update_range.merged:
            segment = update_range.insert_range.segment
            delta = update_range.start_rid \
                - update_range.insert_range.start_rid
            capacity = segment.page_capacity
            row_layout = self._layout is Layout.ROW
            if row_layout:
                row_pages = segment.row_pages()
            else:
                page_lists = {
                    column: segment.pages_for_column(column)
                    for column in (START_TIME_COLUMN, key_physical,
                                   physical)
                }

                def cell(column: int, insert_offset: int) -> Any:
                    pages = page_lists[column]
                    page_index, slot = divmod(insert_offset, capacity)
                    if page_index >= len(pages):
                        return NULL
                    value = pages[page_index].peek_slot(slot)
                    return NULL if value is UNWRITTEN else value

            for offset in range(size):
                insert_offset = delta + offset
                if offset in patch \
                        or insert_offset < segment.compressed_upto:
                    walk(offset)
                    continue
                if segment.is_tombstone(insert_offset):
                    continue
                if row_layout:
                    page_index, slot = divmod(insert_offset, capacity)
                    row = row_pages[page_index].read_row(slot) \
                        if page_index < len(row_pages) \
                        and row_pages[page_index].is_written(slot) else None
                    if row is None:
                        continue  # never written
                    start_cell = row[START_TIME_COLUMN]
                    key_value = row[key_physical]
                else:
                    start_cell = cell(START_TIME_COLUMN, insert_offset)
                    if is_null(start_cell):
                        continue  # never written
                    key_value = cell(key_physical, insert_offset)
                committed = self.committed_time_settled(start_cell) \
                    if type(start_cell) is int else None
                if committed is None or committed > as_of \
                        or is_null(key_value):
                    continue
                values.append(row[physical] if row_layout
                              else cell(physical, insert_offset))
            return values

        tombstones = update_range.base_tombstones
        records_per_page = self._records_per_page
        if self._layout is Layout.ROW:
            chain = self.page_directory.base_chain(update_range.range_id,
                                                   ROW_CHAIN_COLUMN)
            offset = 0
            for page in chain if chain is not None else ():
                for row in page.read_rows():
                    if offset >= size:
                        return values
                    current, offset = offset, offset + 1
                    if current in tombstones:
                        continue
                    if current in patch or row is None:
                        if row is None and current not in patch:
                            continue  # never written
                        walk(current)
                        continue
                    if row[START_TIME_COLUMN] > as_of:
                        continue  # inserted after the snapshot
                    if row[LAST_UPDATED_COLUMN] > as_of:
                        walk(current)  # consolidation too new
                        continue
                    if is_null(row[key_physical]):
                        continue  # settled merged delete or hole
                    values.append(row[physical])
            for current in range(offset, size):  # mid-install fallback
                if current not in tombstones:
                    walk(current)
            return values

        directory = self.page_directory
        range_id = update_range.range_id
        key_chain = directory.base_chain(range_id, key_physical)
        start_chain = directory.base_chain(range_id, START_TIME_COLUMN)
        last_chain = directory.base_chain(range_id, LAST_UPDATED_COLUMN)
        data_chain = directory.base_chain(range_id, physical)
        if key_chain is None or start_chain is None \
                or last_chain is None or data_chain is None:
            for offset in range(size):  # mid-install: the walk is safe
                if offset not in tombstones:
                    walk(offset)
            return values
        for offset in range(size):
            if offset in tombstones:
                continue
            if offset in patch:
                walk(offset)
                continue
            page_index, slot = divmod(offset, records_per_page)
            key_tps = key_chain[page_index].tps_rid
            if data_chain[page_index].tps_rid != key_tps \
                    or start_chain[page_index].tps_rid != key_tps \
                    or last_chain[page_index].tps_rid != key_tps:
                walk(offset)  # Lemma 3: decoupled merge in flight
                continue
            if start_chain[page_index].read_slot(slot) > as_of:
                continue  # inserted after the snapshot
            if last_chain[page_index].read_slot(slot) > as_of:
                walk(offset)  # consolidation too new: resurrect
                continue
            if is_null(key_chain[page_index].read_slot(slot)):
                continue  # settled merged delete or hole
            values.append(data_chain[page_index].read_slot(slot))
        return values

    def read_relative_version(self, rid: int,
                              data_columns: Sequence[int] | None,
                              relative_version: int,
                              predicate: VisibilityPredicate | None = None,
                              ) -> dict[int, Any] | Deleted | None:
        """Read the version *relative_version* steps behind the visible one.

        ``relative_version=0`` is the visible version, ``-1`` one older,
        matching the classic L-Store ``select_version`` convention.
        """
        if predicate is None:
            predicate = visible_latest_committed
        if data_columns is None:
            data_columns = range(self.schema.num_columns)
        return self.assemble_version(rid, data_columns, predicate,
                                     skip_newest=-relative_version)

    # ------------------------------------------------------------------
    # Scans (Section 6: SUM aggregations over one column)
    # ------------------------------------------------------------------

    def scan_sum(self, data_column: int,
                 as_of: int | None = None) -> int:
        """SUM over every visible record's *data_column* (Section 6).

        Routed through the analytical scan executor: one partition per
        update range, each running under its own epoch registration,
        serially or on the shared worker pool
        (``config.scan_parallelism``). Clean merged partitions run on
        the vectorised column-slice plane
        (``config.vectorized_scans``): whole NumPy slices summed
        array-at-a-time with only dirty records patched through the
        per-record walk — so scan cost grows with the number of
        unmerged tail records, which is exactly the effect Figure 8
        measures. *as_of* scans run on the version-horizon plane
        (:meth:`read_version_slices`): base slices masked by the Start
        Time / Last Updated slices, with only straddling or dirty
        records walking their lineage (always correct, per Theorem 2).
        """
        from ..exec.executor import execute_scan
        from ..exec.operators import ColumnSum
        return execute_scan(self, ColumnSum(data_column), as_of=as_of)

    def _tail_patch_offsets(self, update_range: UpdateRange,
                            since_offset: int) -> set[int]:
        """Range offsets touched by tail records from *since_offset* on.

        Re-walk fallback for ``incremental_dirty_sets=False`` and for
        state rebuilds; the scan hot path uses the incrementally
        maintained :meth:`UpdateRange.dirty_offsets` instead.
        """
        tail = update_range.tail
        if tail is None:
            return set()
        start_rid = update_range.start_rid
        return {base_rid - start_rid
                for _, base_rid in tail.iter_base_rids(since_offset)}

    def _scan_patch_offsets(self, update_range: UpdateRange) -> set[int]:
        """Records whose base-page values a scan must patch."""
        if self.config.incremental_dirty_sets:
            return update_range.dirty_offsets()
        return self._tail_patch_offsets(update_range,
                                        update_range.merged_upto)

    def rebuild_unmerged_horizon(self, update_range: UpdateRange) -> None:
        """Recompute the unmerged version horizon from the tail suffix.

        Called after a merge consumes a tail prefix (and after WAL
        recovery): the new ``unmerged_min_time`` is the smallest
        commit-time lower bound over the remaining unmerged regular
        records. Held under the dirty lock for the whole scan so
        concurrent appends cannot slip a record between the scan and
        the install; transaction markers and in-flight appends resolve
        to the fully conservative bound 0 (the next merge clears them),
        so the summary can only under-promise, never over-promise.
        """
        tail = update_range.tail
        snapshot_bit = 1 << self.schema.num_columns
        with update_range._dirty_lock:
            if tail is None:
                update_range.unmerged_min_time = None
                return
            minimum: int | None = None
            limit = tail.num_allocated()
            for offset in range(update_range.merged_upto, limit):
                if not tail.record_written(offset):
                    minimum = 0  # in-flight append: unknown commit time
                    break
                if tail.is_tombstone(offset):
                    continue
                encoding = tail.record_cell(offset, SCHEMA_ENCODING_COLUMN)
                if type(encoding) is int and encoding & snapshot_bit:
                    continue  # snapshot records carry no version
                cell = tail.record_cell(offset, START_TIME_COLUMN)
                bound = cell if type(cell) is int \
                    and not cell & TXN_ID_FLAG else 0
                if minimum is None or bound < minimum:
                    minimum = bound
                if minimum == 0:
                    break
            update_range.unmerged_min_time = minimum

    def scan_records(self, data_columns: Sequence[int] | None = None,
                     predicate: VisibilityPredicate | None = None,
                     ) -> Iterator[tuple[int, dict[int, Any]]]:
        """Yield ``(rid, values)`` for every visible record.

        Under the default (latest-committed) predicate each range's
        existing records flow through :meth:`read_latest_many`, so
        clean merged ranges pay one chain resolution per column instead
        of a per-record 2-hop walk; non-default predicates keep the
        per-record path.
        """
        batched = predicate is None
        if predicate is None:
            predicate = visible_latest_committed
        if data_columns is None:
            data_columns = range(self.schema.num_columns)
        data_columns = tuple(data_columns)
        for update_range in self.sorted_ranges():
            rids: list[int] = []
            for offset in range(update_range.size):
                if not self.base_record_exists(update_range, offset):
                    continue
                rids.append(update_range.start_rid + offset)
            if batched and len(rids) > 1:
                results = self.read_latest_many(rids, data_columns)
                for rid in rids:
                    visible = results.get(rid)
                    if visible is None or visible is DELETED:
                        continue
                    yield rid, visible
                continue
            for rid in rids:
                visible = self.read_latest(rid, data_columns, predicate)
                if visible is None or visible is DELETED:
                    continue
                yield rid, visible

    # ------------------------------------------------------------------
    # Marker stamping (transaction-manager auto-GC support)
    # ------------------------------------------------------------------

    def stamp_tail_markers(self) -> int | None:
        """Resolve-and-stamp transaction markers in Start Time cells.

        Advances every tail segment's lazily-stamped prefix
        (``stamped_upto``): committed markers are swapped for their
        commit time in place (the paper's lazy swap, done eagerly here
        so the transaction-manager entries become droppable), aborted
        markers are skipped (the manager's unknown-id fallback already
        reports ABORTED), and the prefix stops at the first live
        transaction or mid-append record.

        Returns the lowest commit time among committed markers that
        could **not** be stamped (a refinement CAS lost to a racing
        reader-stamp — transient, re-checked next sweep), or None when
        nothing blocks. Both layouts refine in place now — the row
        layout through :meth:`~repro.core.page.RowPage.refine_cell` —
        so row-layout tables no longer pin the GC watermark forever.
        The auto-GC must keep every entry at or above that time.
        """
        blocker: int | None = None
        segments: list[TailSegment] = []
        for insert_range in list(self.insert_ranges):
            segments.append(insert_range.segment)
        for update_range in self.sorted_ranges():
            tail = update_range.tail
            if tail is not None:
                segments.append(tail)
        for segment in segments:
            segment_blocker = self._stamp_segment_markers(segment)
            if segment_blocker is not None:
                blocker = segment_blocker if blocker is None \
                    else min(blocker, segment_blocker)
        return blocker

    def _stamp_segment_markers(self, segment: TailSegment) -> int | None:
        offset = segment.stamped_upto
        limit = segment.num_allocated()
        while offset < limit:
            if offset < segment.compressed_upto \
                    and segment._part_for(offset) is not None:
                # Compressed parts store resolved times only.
                offset += 1
                continue
            if not segment.record_written(offset):
                break  # writer mid-append: the prefix ends here for now
            cell = segment.record_cell(offset, START_TIME_COLUMN)
            if type(cell) is int and cell & TXN_ID_FLAG:
                if self.txn_source is None:
                    break
                state, commit_time = self.txn_source.lookup(
                    cell & ~TXN_ID_FLAG)
                if state is TransactionState.COMMITTED:
                    stamped = segment.replace_record_cell(
                        offset, START_TIME_COLUMN, cell, commit_time)
                    if not stamped and segment.record_cell(
                            offset, START_TIME_COLUMN) == cell:
                        # Unstampable committed marker (CAS raced and
                        # the marker is still in place): its entry
                        # must survive; re-checked next sweep.
                        segment.stamped_upto = offset
                        return commit_time
                elif state is not TransactionState.ABORTED:
                    break  # live transaction: the prefix ends here
            offset += 1
        segment.stamped_upto = offset
        return None

    # ------------------------------------------------------------------
    # Index management
    # ------------------------------------------------------------------

    def create_index(self, data_column: int):
        """Create a secondary index on *data_column*, backfilled.

        Existing records are indexed from their latest visible version;
        subsequent updates maintain the index incrementally with
        deferred removal (Section 3.1, footnote 3).
        """
        index = self.index.create_secondary(data_column)
        for rid, values in self.scan_records((data_column,)):
            index.insert(values[data_column], rid)
        return index

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    @property
    def num_records(self) -> int:
        """Rows ever inserted (including deleted ones)."""
        return self.stat_inserts

    def tail_record_count(self) -> int:
        """Total tail records appended across all update ranges."""
        return sum(r.tail.num_allocated() for r in self.sorted_ranges()
                   if r.tail is not None)

    def unmerged_tail_count(self) -> int:
        """Tail records not yet consolidated (merge back-pressure)."""
        return sum(r.unmerged_tail_count() for r in self.sorted_ranges())
