"""Page directory: the only structure the merge updates in foreground.

Section 4.1.1 step 4: after a merge builds consolidated pages, "the only
foreground action taken by the merge process ... is simply to swap and
update pointers in the page directory". Readers resolve
``(update range, column)`` to the current chain of base pages through
this directory; the swap is atomic per chain, and outdated chains are
handed to the epoch manager for deferred reclamation (step 5).

Every page — base, tail, merged, compressed — is also registered here by
page id, reflecting the paper's "both base and tail pages are referenced
through the database page directory ... and persisted identically".
"""

from __future__ import annotations

import threading
from typing import Iterable, Iterator

from ..errors import StorageError
from .page import Page, RowPage

AnyPage = Page | RowPage


class PageDirectory:
    """Registry of all pages plus the base-page chains per range/column.

    Chain reads take no lock: a chain is an immutable tuple and Python
    reference assignment is atomic, mirroring the paper's pointer-swap
    (a CAS per directory entry, Section 5.1.2). Structural mutations
    (registering pages, swapping chains) take a short mutex.
    """

    def __init__(self) -> None:
        self._pages: dict[int, AnyPage] = {}
        self._base_chains: dict[tuple[int, int], tuple[AnyPage, ...]] = {}
        self._lock = threading.Lock()
        self._swap_count = 0
        #: Monotone chain-table generation: bumped by every install and
        #: swap. Readers cache per-range chain lists keyed on this
        #: (:meth:`~repro.core.table.Table.range_chains`) and revalidate
        #: with one int compare instead of a dict lookup per column.
        self.version = 0

    # -- page registry ----------------------------------------------------

    def register(self, page: AnyPage) -> None:
        """Register *page* under its page id."""
        with self._lock:
            if page.page_id in self._pages:
                raise StorageError(
                    "page id %d already registered" % page.page_id)
            self._pages[page.page_id] = page

    def register_many(self, pages: Iterable[AnyPage]) -> None:
        """Register several pages atomically."""
        pages = list(pages)
        with self._lock:
            for page in pages:
                if page.page_id in self._pages:
                    raise StorageError(
                        "page id %d already registered" % page.page_id)
            for page in pages:
                self._pages[page.page_id] = page

    def get(self, page_id: int) -> AnyPage:
        """Return the page registered under *page_id*."""
        try:
            return self._pages[page_id]
        except KeyError:
            raise StorageError("unknown page id %d" % page_id) from None

    def unregister(self, page_id: int) -> None:
        """Drop *page_id* from the registry (after epoch reclamation)."""
        with self._lock:
            self._pages.pop(page_id, None)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def buffer_bytes(self) -> int:
        """Total bytes of fixed-width page-buffer storage registered.

        Feeds the ``storage.page_bytes`` gauge: byte-buffer pages report
        their buffer + bitmap footprint, object-list and row pages
        report 0 (they hold Python references, not raw storage).
        """
        with self._lock:
            pages = list(self._pages.values())
        return sum(getattr(page, "byte_size", 0) for page in pages)

    # -- base chains --------------------------------------------------------

    def set_base_chain(self, range_id: int, column: int,
                       pages: Iterable[AnyPage]) -> None:
        """Install the base-page chain for ``(range_id, column)``."""
        chain = tuple(pages)
        with self._lock:
            self._base_chains[(range_id, column)] = chain
            self.version += 1

    def base_chain(self, range_id: int,
                   column: int) -> tuple[AnyPage, ...] | None:
        """Current chain for ``(range_id, column)``; None if absent.

        Lock-free: returns the immutable tuple reference current at call
        time. A concurrent swap does not invalidate the returned chain —
        the epoch manager keeps those pages alive while any query that
        could hold them is active.
        """
        return self._base_chains.get((range_id, column))

    def chain_getter(self):
        """Bound ``dict.get`` over the chain table (hot read paths).

        Maps ``(range_id, column)`` → chain tuple or None with the same
        lock-free semantics as :meth:`base_chain`, but without a method
        frame per lookup — the batched base readers grab it once per
        call and then pay a plain dict lookup per column.
        """
        return self._base_chains.get

    def swap_base_chain(self, range_id: int, column: int,
                        new_pages: Iterable[AnyPage],
                        ) -> tuple[AnyPage, ...]:
        """Atomically replace a chain; return the outdated chain.

        This is the merge's foreground pointer swap (step 4). The caller
        passes the outdated chain to the epoch manager for deferred
        de-allocation (step 5).
        """
        chain = tuple(new_pages)
        with self._lock:
            old = self._base_chains.get((range_id, column), ())
            self._base_chains[(range_id, column)] = chain
            self._swap_count += 1
            self.version += 1
            return old

    def base_columns(self, range_id: int) -> Iterator[int]:
        """Yield the columns that have a base chain for *range_id*."""
        with self._lock:
            keys = [key for key in self._base_chains if key[0] == range_id]
        for _, column in keys:
            yield column

    @property
    def swap_count(self) -> int:
        """Number of chain swaps performed (merge observability)."""
        return self._swap_count
