"""Core L-Store engine: lineage-based storage, merge, compression."""

from .config import EngineConfig, PAPER_CONFIG, TEST_CONFIG
from .db import Database
from .query import Query, Record
from .schema import TableSchema
from .table import DELETED, Table

__all__ = [
    "Database",
    "DELETED",
    "EngineConfig",
    "PAPER_CONFIG",
    "Query",
    "Record",
    "Table",
    "TableSchema",
    "TEST_CONFIG",
]
