"""Statement-style query API (auto-commit).

A thin, ergonomic layer over :class:`~repro.core.table.Table` matching
the classic L-Store interface (insert / select / select_version /
update / delete / sum / sum_version / increment) plus analytics helpers
(full-column scans, time-travel reads). Every call is an auto-commit
statement; multi-statement transactions go through
:class:`~repro.txn.transaction.Transaction` instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from ..errors import KeyNotFoundError
from ..exec.executor import execute_scan
from ..exec.operators import CollectRows, ColumnSum, eq
from .table import DELETED, Table
from .version import visible_as_of, visible_latest_committed


@dataclass(frozen=True)
class Record:
    """One materialised record returned by a query."""

    rid: int
    key: Any
    columns: tuple[Any, ...]

    def __getitem__(self, data_column: int) -> Any:
        return self.columns[data_column]


class Query:
    """Auto-commit statements against one table."""

    def __init__(self, table: Table) -> None:
        self.table = table

    # -- helpers ------------------------------------------------------------

    def _projection_columns(self, projection: Sequence[int] | None,
                            ) -> list[int]:
        if projection is None:
            return list(range(self.table.schema.num_columns))
        self.table.schema.validate_projection(projection)
        return [i for i, flag in enumerate(projection) if flag]

    def _materialize(self, rid: int, values: dict[int, Any],
                     requested: Sequence[int]) -> Record:
        """Shape fetched values into a Record: unprojected columns are None."""
        schema = self.table.schema
        key = values.get(schema.key_index)
        if key is None and schema.key_index not in values:
            key_values = self.table.read_latest(rid, (schema.key_index,))
            if isinstance(key_values, dict):
                key = key_values[schema.key_index]
        wanted = set(requested)
        columns = tuple(values.get(column) if column in wanted else None
                        for column in range(schema.num_columns))
        return Record(rid=rid, key=key, columns=columns)

    # -- writes ------------------------------------------------------------

    def insert(self, *columns: Any) -> int:
        """Insert a row (one positional value per data column)."""
        return self.table.insert(list(columns))

    def update(self, key: Any, *columns: Any) -> int:
        """Update the record with *key*; None values mean "unchanged".

        Mirrors the classic API: ``update(key, None, 5, None)`` sets
        data column 1 to 5.
        """
        self.table.schema.validate_row(columns)
        updates = {i: value for i, value in enumerate(columns)
                   if value is not None}
        rid = self._rid(key)
        return self.table.update(rid, updates)

    def update_columns(self, key: Any, updates: dict[int, Any]) -> int:
        """Update by explicit ``{data_column: value}`` mapping."""
        rid = self._rid(key)
        return self.table.update(rid, dict(updates))

    def delete(self, key: Any) -> int:
        """Delete the record with *key*."""
        rid = self._rid(key)
        return self.table.delete(rid)

    def increment(self, key: Any, data_column: int, delta: int = 1) -> int:
        """Add *delta* to one column of the record with *key*."""
        rid = self._rid(key)
        current = self.table.read_latest(rid, (data_column,))
        if current is None or current is DELETED:
            raise KeyNotFoundError("key %r has no visible version" % (key,))
        return self.table.update(
            rid, {data_column: current[data_column] + delta})

    def _rid(self, key: Any) -> int:
        rid = self.table.index.primary.get(key)
        if rid is None:
            raise KeyNotFoundError(
                "no record with key %r in table %r"
                % (key, self.table.schema.name))
        return rid

    # -- point reads ----------------------------------------------------------

    def select(self, search_key: Any, search_column: int,
               projection: Sequence[int] | None = None) -> list[Record]:
        """Records whose *search_column* equals *search_key*.

        Uses the primary index for the key column, a secondary index if
        one exists, and a scan otherwise. Matches are re-validated
        against the visible version (deferred index maintenance). The
        candidate fan-out reads through the batched
        :meth:`~repro.core.table.Table.read_latest_many` path.
        """
        columns = self._projection_columns(projection)
        fetch = sorted(set(columns) | {search_column})
        rids = list(self._candidates(search_key, search_column))
        records: list[Record] = []
        for rid, values in self._read_many(rids, fetch):
            if values[search_column] != search_key:
                continue
            records.append(self._materialize(rid, values, columns))
        return records

    def _read_many(self, rids: Sequence[int], fetch: Sequence[int],
                   ) -> Iterator[tuple[int, dict[int, Any]]]:
        """Batched latest-committed reads, invisible/deleted filtered."""
        if len(rids) > 1:
            results = self.table.read_latest_many(rids, fetch)
            for rid in rids:
                values = results.get(rid)
                if values is None or values is DELETED:
                    continue
                yield rid, values
            return
        for rid in rids:
            values = self.table.read_latest(rid, fetch)
            if values is None or values is DELETED:
                continue
            yield rid, values

    def _candidates(self, search_key: Any,
                    search_column: int) -> Iterator[int]:
        schema = self.table.schema
        if search_column == schema.key_index:
            rid = self.table.index.primary.get(search_key)
            if rid is not None:
                yield rid
            return
        index = self.table.index.secondary(search_column)
        if index is not None:
            yield from index.lookup(search_key)
            return
        for rid, _ in self.table.scan_records((search_column,)):
            yield rid

    def select_version(self, search_key: Any, search_column: int,
                       projection: Sequence[int] | None,
                       relative_version: int) -> list[Record]:
        """Like :meth:`select` but *relative_version* steps in the past.

        ``relative_version=0`` is the latest committed version, ``-1``
        the one before it, and so on (classic L-Store convention).
        """
        columns = self._projection_columns(projection)
        fetch = sorted(set(columns) | {search_column})
        records: list[Record] = []
        for rid in self._candidates(search_key, search_column):
            values = self.table.read_relative_version(rid, fetch,
                                                      relative_version)
            if values is None or values is DELETED:
                continue
            records.append(self._materialize(rid, values, columns))
        return records

    def select_as_of(self, search_key: Any, search_column: int,
                     projection: Sequence[int] | None,
                     as_of: int) -> list[Record]:
        """Time-travel select: the version visible at timestamp *as_of*.

        Indexed search columns walk the candidate fan-out per record;
        an unindexed column becomes a planned full-table snapshot scan
        (filter + row collection) on the executor's version-horizon
        plane — which also surfaces records whose *current* version is
        deleted or re-keyed but that matched at *as_of*, something the
        latest-visibility candidate enumeration cannot see.
        """
        columns = self._projection_columns(projection)
        schema = self.table.schema
        # Fetch the key column even when the projection excludes it:
        # _materialize's fallback key lookup reads *latest* visibility,
        # which is exactly wrong for records this path surfaces because
        # they were deleted or re-keyed after the snapshot.
        fetch = sorted(set(columns) | {search_column, schema.key_index})
        if search_column != schema.key_index \
                and self.table.index.secondary(search_column) is None:
            collected = execute_scan(
                self.table, CollectRows(fetch),
                filters=(eq(search_column, search_key),), as_of=as_of)
            return [self._materialize(rid, values, columns)
                    for rid, values in collected]
        predicate = visible_as_of(as_of, settle_precommit=True)
        records: list[Record] = []
        for rid in self._candidates(search_key, search_column):
            values = self.table.assemble_version(rid, fetch, predicate)
            if values is None or values is DELETED:
                continue
            if values[search_column] != search_key:
                continue
            records.append(self._materialize(rid, values, columns))
        return records

    # -- aggregates ------------------------------------------------------------

    def sum(self, start_key: Any, end_key: Any, data_column: int) -> int:
        """SUM of *data_column* over keys in ``[start_key, end_key]``.

        A thin wrapper over the scan executor: the ordered primary
        index narrows the candidates to the range (O(log N + k)), and
        small ranges fold the raw value stream dict-free
        (:meth:`~repro.core.table.Table.read_latest_values` — no
        executor framing, the span-16 hot path); ranges spanning many
        partitions read through the batched read path in parallel when
        the engine is configured with ``scan_parallelism > 1``.
        """
        rids = [rid for _, rid in
                self.table.index.primary.range_items(start_key, end_key)]
        if not rids:
            return 0
        return execute_scan(self.table, ColumnSum(data_column), rids=rids)

    def aggregate(self, aggregate: Any, *, filters: Sequence[Any] = (),
                  start_key: Any = None, end_key: Any = None,
                  as_of: int | None = None) -> Any:
        """Planned analytical scan with a pluggable aggregate.

        *aggregate* is any :class:`~repro.exec.operators.Aggregate`
        (sum/count/min/max/avg, group-by, …); *filters* are
        :class:`~repro.exec.operators.Filter` predicates. Passing both
        *start_key* and *end_key* restricts the scan to that primary-key
        range through the ordered index; *as_of* time-travels.
        """
        rids = None
        if start_key is not None or end_key is not None:
            if start_key is None or end_key is None:
                raise ValueError(
                    "start_key and end_key must be given together")
            rids = [rid for _, rid in
                    self.table.index.primary.range_items(start_key, end_key)]
        return execute_scan(self.table, aggregate, filters=tuple(filters),
                            rids=rids, as_of=as_of)

    def sum_version(self, start_key: Any, end_key: Any, data_column: int,
                    relative_version: int) -> int:
        """Historic SUM at *relative_version* steps in the past.

        ``relative_version=0`` is the latest committed version, so it
        routes through the scan executor like :meth:`sum` (batched
        clean-record reads, dict-free value folds) instead of a
        per-record chain walk; genuinely historic versions (< 0) keep
        the exact relative-version walk.
        """
        if relative_version == 0:
            return self.sum(start_key, end_key, data_column)
        total = 0
        for _, rid in self.table.index.primary.range_items(start_key,
                                                           end_key):
            values = self.table.read_relative_version(
                rid, (data_column,), relative_version)
            if values is None or values is DELETED:
                continue
            total += values[data_column]
        return total

    def select_range(self, start_key: Any, end_key: Any,
                     projection: Sequence[int] | None = None, *,
                     as_of: int | None = None) -> list[Record]:
        """Records with key in ``[start_key, end_key]``, in key order.

        A thin wrapper over the scan executor's row-collect operator:
        candidates come from the ordered primary index, the planner
        groups them into per-range partitions (latest-committed
        partitions read through the batched read path, *as_of* switches
        to the time-travel chain walk per record), and the collected
        rows are re-shaped into key order against the index items.
        """
        columns = self._projection_columns(projection)
        key_index = self.table.schema.key_index
        fetch = sorted(set(columns) | {key_index})
        items = list(self.table.index.primary.range_items(start_key,
                                                          end_key))
        records: list[Record] = []
        if not items:
            return records
        rids = [rid for _, rid in items]
        collected = execute_scan(self.table, CollectRows(fetch), rids=rids,
                                 as_of=as_of)
        by_rid = dict(collected)
        for _, rid in items:
            values = by_rid.get(rid)
            if values is None:
                continue
            if not start_key <= values[key_index] <= end_key:
                continue  # deferred index maintenance re-check
            records.append(self._materialize(rid, values, columns))
        return records

    def scan_sum(self, data_column: int, *, as_of: int | None = None) -> int:
        """Full-column analytical SUM (the Section 6 scan workload)."""
        return self.table.scan_sum(data_column, as_of=as_of)

    def scan(self, projection: Sequence[int] | None = None,
             ) -> Iterator[Record]:
        """Yield every visible record (analytics iteration)."""
        columns = self._projection_columns(projection)
        for rid, values in self.table.scan_records(columns):
            yield self._materialize(rid, values, columns)

    def count(self) -> int:
        """Number of visible records."""
        return sum(1 for _ in self.table.scan_records(
            (self.table.schema.key_index,)))
