"""Indexes that only ever reference base RIDs (Section 3.1).

"Indexes always point to base records (i.e., base RIDs), and they never
directly point to any tail records" — updates therefore touch only the
indexes of the columns they change, and even those keep pointing at the
same base RID. When a column value changes, the new value is *added* to
the index while the old entry is retained for a while (footnote 3:
removal is deferred so snapshot queries keep finding historic values);
readers re-evaluate their predicate against the visible version after
the lookup, exactly as Section 3.1 prescribes.

The primary index is unique (key → base RID); secondary indexes are
multimaps (value → set of base RIDs).
"""

from __future__ import annotations

import threading
from bisect import bisect_left, bisect_right
from heapq import merge as _sorted_merge
from typing import TYPE_CHECKING, Any, Hashable, Iterable, Iterator

from ..errors import DuplicateKeyError
from .schema import TableSchema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .config import EngineConfig

#: Distinct-from-everything marker for duplicate-skip comparisons.
_NO_KEY = object()


class _LazySortedDomain:
    """Sorted view over comparable values, compacted lazily.

    Appends go to a pending buffer; :meth:`compact` sorts the buffer
    and merges it into the sorted array — O(k log k + N) per batch of k
    appends instead of O(N) per append. Removed values stay in the
    array as tombstones (the owner's liveness lookup filters them, and
    :meth:`iter_range` skips re-append duplicates) until they outnumber
    half the array, when it is rebuilt from the live set. The owner
    synchronises access with its own lock.
    """

    __slots__ = ("_sorted", "_pending", "_stale")

    def __init__(self) -> None:
        self._sorted: list[Any] = []
        self._pending: list[Any] = []
        self._stale = 0

    def append(self, value: Any) -> None:
        self._pending.append(value)

    def mark_stale(self) -> None:
        self._stale += 1

    def compact(self, live: Iterable[Any]) -> None:
        """Fold pending appends in; rebuild from *live* past threshold."""
        if self._pending:
            self._pending.sort()
            if self._sorted:
                self._sorted = list(_sorted_merge(self._sorted,
                                                  self._pending))
            else:
                self._sorted = self._pending
            self._pending = []
        if self._stale > 64 and self._stale * 2 > len(self._sorted):
            self._sorted = sorted(live)
            self._stale = 0

    def iter_range(self, low: Any, high: Any) -> Iterator[Any]:
        """Values in ``[low, high]``, adjacent duplicates skipped."""
        lo = bisect_left(self._sorted, low)
        hi = bisect_right(self._sorted, high)
        previous: Any = _NO_KEY
        for value in self._sorted[lo:hi]:
            if previous is not _NO_KEY and value == previous:
                continue  # re-appended after removal: duplicate entry
            previous = value
            yield value


class PrimaryIndex:
    """Unique hash index over the primary-key column."""

    def __init__(self) -> None:
        self._map: dict[Hashable, int] = {}
        self._lock = threading.Lock()

    def insert(self, key: Hashable, rid: int) -> None:
        """Map *key* to *rid*; raise on duplicates."""
        with self._lock:
            if key in self._map:
                raise DuplicateKeyError("duplicate primary key %r" % (key,))
            self._map[key] = rid

    def replace(self, key: Hashable, rid: int) -> None:
        """Re-point *key* at *rid* (re-insert after a committed delete)."""
        with self._lock:
            self._map[key] = rid

    def get(self, key: Hashable) -> int | None:
        """Return the base RID for *key*, or None."""
        return self._map.get(key)

    def remove(self, key: Hashable) -> None:
        """Drop *key* (called when a delete's deferral window closes)."""
        with self._lock:
            self._map.pop(key, None)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._map

    def __len__(self) -> int:
        return len(self._map)

    def keys(self) -> Iterator[Hashable]:
        """Iterate over the indexed keys (snapshot copy)."""
        with self._lock:
            return iter(list(self._map.keys()))

    def items(self) -> list[tuple[Hashable, int]]:
        """Snapshot of (key, rid) pairs."""
        with self._lock:
            return list(self._map.items())

    def range_items(self, low: Hashable,
                    high: Hashable) -> list[tuple[Hashable, int]]:
        """(key, rid) pairs with ``low <= key <= high``, in key order.

        Hash index: full filter walk plus a sort. The
        :class:`OrderedPrimaryIndex` override is O(log N + k) and
        returns the same key order.
        """
        with self._lock:
            return sorted((key, rid) for key, rid in self._map.items()
                          if low <= key <= high)  # type: ignore[operator]


class OrderedPrimaryIndex(PrimaryIndex):
    """Unique primary index with an ordered view for range reads.

    The hash map stays the ground truth for point lookups; alongside it
    a sorted key array is maintained *lazily*: inserts append to a
    pending buffer, and the first range read after a batch of inserts
    merges the (sorted) buffer into the array — O(k log k + N) once per
    batch instead of O(N) per insert. Removed keys stay in the array as
    tombstones (the map lookup filters them) until they outnumber half
    the live keys, when the array is rebuilt.

    This is the structure that makes ``Query.sum`` over ``[low, high]``
    cost O(log N + k) as the paper's Section 6 range workloads assume,
    instead of a full primary-index walk.
    """

    def __init__(self) -> None:
        super().__init__()
        self._domain = _LazySortedDomain()

    def insert(self, key: Hashable, rid: int) -> None:
        with self._lock:
            if key in self._map:
                raise DuplicateKeyError("duplicate primary key %r" % (key,))
            self._map[key] = rid
            self._domain.append(key)

    def replace(self, key: Hashable, rid: int) -> None:
        with self._lock:
            if key not in self._map:
                self._domain.append(key)
            self._map[key] = rid

    def remove(self, key: Hashable) -> None:
        with self._lock:
            if self._map.pop(key, None) is not None:
                self._domain.mark_stale()

    def range_items(self, low: Hashable,
                    high: Hashable) -> list[tuple[Hashable, int]]:
        """(key, rid) pairs with ``low <= key <= high``, in key order."""
        with self._lock:
            self._domain.compact(self._map)
            get = self._map.get
            items: list[tuple[Hashable, int]] = []
            for key in self._domain.iter_range(low, high):
                rid = get(key)
                if rid is not None:
                    items.append((key, rid))
            return items


class SecondaryIndex:
    """Non-unique hash index: value → base RIDs that *may* match.

    Entries are only added, never eagerly removed; lookups return
    candidates and the read path re-checks the predicate on the visible
    version (deferred-removal semantics of footnote 3). :meth:`vacuum`
    implements the eventual removal "until the changed entries fall
    outside the snapshot of all relevant active queries".
    """

    def __init__(self, column: int, *, ordered: bool = False) -> None:
        self.column = column
        self.ordered = ordered
        self._map: dict[Hashable, set[int]] = {}
        self._lock = threading.Lock()
        #: (value, rid, superseded_at) triples eligible for vacuum.
        self._stale: list[tuple[Hashable, int, int]] = []
        #: Ordered mode: lazily maintained sorted value domain.
        self._domain = _LazySortedDomain() if ordered else None

    def insert(self, value: Hashable, rid: int) -> None:
        """Add candidate mapping value → rid."""
        with self._lock:
            rids = self._map.get(value)
            if rids is None:
                self._map[value] = {rid}
                if self._domain is not None:
                    self._domain.append(value)
            else:
                rids.add(rid)

    def mark_stale(self, value: Hashable, rid: int, superseded_at: int) -> None:
        """Record that (value, rid) stopped being current at a timestamp."""
        with self._lock:
            self._stale.append((value, rid, superseded_at))

    def lookup(self, value: Hashable) -> frozenset[int]:
        """Candidate base RIDs whose column may equal *value*."""
        with self._lock:
            rids = self._map.get(value)
            return frozenset(rids) if rids else frozenset()

    def lookup_range(self, low: Hashable, high: Hashable) -> frozenset[int]:
        """Candidates with ``low <= value <= high``.

        Ordered mode bisects the sorted value domain (O(log V + hits));
        the plain hash index falls back to a full multimap walk.
        """
        result: set[int] = set()
        with self._lock:
            if self._domain is not None:
                self._domain.compact(self._map)
                get = self._map.get
                for value in self._domain.iter_range(low, high):
                    rids = get(value)
                    if rids:
                        result.update(rids)
                return frozenset(result)
            for value, rids in self._map.items():
                if low <= value <= high:  # type: ignore[operator]
                    result.update(rids)
        return frozenset(result)

    def vacuum(self, oldest_active_begin: int | None) -> int:
        """Drop stale entries no active snapshot can still need.

        *oldest_active_begin* is the begin time of the longest-running
        active query (None = no active queries). Returns entries dropped.
        """
        dropped = 0
        with self._lock:
            keep: list[tuple[Hashable, int, int]] = []
            for value, rid, superseded_at in self._stale:
                if oldest_active_begin is None \
                        or superseded_at < oldest_active_begin:
                    rids = self._map.get(value)
                    if rids is not None:
                        rids.discard(rid)
                        if not rids:
                            del self._map[value]
                            if self._domain is not None:
                                self._domain.mark_stale()
                    dropped += 1
                else:
                    keep.append((value, rid, superseded_at))
            self._stale = keep
        return dropped

    @property
    def stale_entries(self) -> int:
        """Number of entries awaiting vacuum."""
        with self._lock:
            return len(self._stale)

    def __len__(self) -> int:
        with self._lock:
            return sum(len(rids) for rids in self._map.values())


class IndexManager:
    """All indexes of one table: the primary plus optional secondaries."""

    def __init__(self, schema: TableSchema,
                 config: "EngineConfig | None" = None) -> None:
        self._schema = schema
        self._config = config
        self.primary: PrimaryIndex = (
            OrderedPrimaryIndex()
            if config is None or config.ordered_primary_index
            else PrimaryIndex())
        self._secondary: dict[int, SecondaryIndex] = {}
        self._lock = threading.Lock()

    def create_secondary(self, data_column: int) -> SecondaryIndex:
        """Create (or return) the secondary index on *data_column*."""
        if data_column == self._schema.key_index:
            raise ValueError(
                "the key column already has the primary index")
        ordered = self._config is None \
            or self._config.ordered_secondary_index
        with self._lock:
            index = self._secondary.get(data_column)
            if index is None:
                index = SecondaryIndex(data_column, ordered=ordered)
                self._secondary[data_column] = index
            return index

    def drop_secondary(self, data_column: int) -> None:
        """Drop the secondary index on *data_column*."""
        with self._lock:
            self._secondary.pop(data_column, None)

    def secondary(self, data_column: int) -> SecondaryIndex | None:
        """Return the secondary index on *data_column*, if any."""
        return self._secondary.get(data_column)

    def secondaries(self) -> Iterable[SecondaryIndex]:
        """Snapshot of all secondary indexes."""
        with self._lock:
            return list(self._secondary.values())

    def on_insert(self, rid: int, values: list[Any]) -> None:
        """Index a freshly inserted row (all columns)."""
        for index in self.secondaries():
            index.insert(values[index.column], rid)

    def on_update(self, rid: int, data_column: int, old_value: Any,
                  new_value: Any, superseded_at: int) -> None:
        """Maintain the affected secondary index after an update.

        Adds the new entry immediately; the old entry is only marked for
        deferred removal (footnote 3).
        """
        index = self._secondary.get(data_column)
        if index is None:
            return
        index.insert(new_value, rid)
        index.mark_stale(old_value, rid, superseded_at)

    def vacuum(self, oldest_active_begin: int | None) -> int:
        """Vacuum every secondary index; return total entries dropped."""
        return sum(index.vacuum(oldest_active_begin)
                   for index in self.secondaries())
