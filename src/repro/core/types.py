"""Core value types, RID spaces, and sentinels.

The paper assigns record identifiers (RIDs) for base and tail records
from one 64-bit key space (Section 2.2) and recommends allocating tail
RIDs *descending* from the top of the space so that page-directory scans
for base pages never have to skip tail entries (Section 4.4). One bit of
the 8-byte indirection value is reserved as a write latch (Section 5.1.1).

Layout of the 64-bit space used here::

    bit 63          : indirection write-latch bit (never part of a RID)
    [2**62, 2**63)  : tail RIDs, allocated descending from 2**63 - 1
    [1, 2**62)      : base RIDs, allocated ascending from 1
    0               : NULL_RID (the paper's null indirection, shown as ⊥)

The paper starts tail RIDs at 2**64; we start one bit lower so the latch
bit and the RID can share a single Python int exactly as they would share
a hardware word. TPS comparisons are reversed accordingly (Section 4.4:
"tail RIDs will be monotonically decreasing, and the TPS logic must be
reversed").
"""

from __future__ import annotations

import enum
from typing import Any

# ---------------------------------------------------------------------------
# Special values
# ---------------------------------------------------------------------------


class _SpecialNull:
    """The implicit special null value, printed as ``∅`` in the paper.

    Pre-assigned to non-updated columns of tail records (Section 2.1).
    Distinct from Python ``None`` so user data may legally store ``None``.
    A singleton: identity comparison (``value is NULL``) is always valid.
    """

    _instance: "_SpecialNull | None" = None

    def __new__(cls) -> "_SpecialNull":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "∅"

    def __reduce__(self) -> tuple[type["_SpecialNull"], tuple[()]]:
        return (_SpecialNull, ())

    def __bool__(self) -> bool:
        return False


#: The special null (∅) stored in never-updated columns of tail records.
NULL = _SpecialNull()


def is_null(value: Any) -> bool:
    """Return True when *value* is the special null ∅."""
    return value is NULL


# ---------------------------------------------------------------------------
# RID space
# ---------------------------------------------------------------------------

#: Null RID — the ⊥ indirection of a never-updated base record.
NULL_RID = 0

#: Bit 63: reserved write-latch bit inside the indirection word.
LATCH_BIT = 1 << 63

#: RIDs at or above this value are tail RIDs.
TAIL_RID_SPLIT = 1 << 62

#: First (largest) tail RID; allocation descends from here.
TAIL_RID_MAX = (1 << 63) - 1

#: Largest base RID that can ever be allocated.
BASE_RID_MAX = TAIL_RID_SPLIT - 1


def is_base_rid(rid: int) -> bool:
    """Return True when *rid* identifies a base record."""
    return 0 < rid < TAIL_RID_SPLIT


def is_tail_rid(rid: int) -> bool:
    """Return True when *rid* identifies a tail record."""
    return TAIL_RID_SPLIT <= rid <= TAIL_RID_MAX


def tail_rid_newer(a: int, b: int) -> bool:
    """Return True when tail RID *a* was allocated after tail RID *b*.

    Tail RIDs descend over time, so *newer* means *numerically smaller*.
    """
    return a < b


# ---------------------------------------------------------------------------
# Timestamps and transaction identifiers
# ---------------------------------------------------------------------------

#: Bit 61 marks a Start Time cell that temporarily holds a transaction id
#: rather than a commit time (Section 5.1.1: "The Start Time column may
#: also hold transaction ID"). Readers detect the flag and consult the
#: transaction manager; the swap to a real commit time happens lazily.
TXN_ID_FLAG = 1 << 61


def make_txn_marker(txn_id: int) -> int:
    """Encode *txn_id* so it can be stored inside a Start Time cell."""
    return TXN_ID_FLAG | txn_id


def is_txn_marker(value: int) -> bool:
    """Return True when a Start Time cell holds a transaction id."""
    return isinstance(value, int) and bool(value & TXN_ID_FLAG)


def txn_id_from_marker(value: int) -> int:
    """Extract the transaction id from a marked Start Time cell."""
    return value & ~TXN_ID_FLAG


# ---------------------------------------------------------------------------
# Enumerations
# ---------------------------------------------------------------------------


class PageKind(enum.Enum):
    """Physical role of a page in the lineage-based layout."""

    BASE = "base"
    TAIL = "tail"
    MERGED = "merged"
    COMPRESSED_TAIL = "compressed_tail"


class IsolationLevel(enum.Enum):
    """Isolation levels supported by the OCC layer (Section 5.1.1)."""

    READ_COMMITTED = "read_committed"
    SNAPSHOT = "snapshot"
    REPEATABLE_READ = "repeatable_read"
    SERIALIZABLE = "serializable"


class TransactionState(enum.Enum):
    """Lifecycle of a transaction (Section 5.1.1)."""

    ACTIVE = "active"
    PRE_COMMIT = "pre-commit"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Layout(enum.Enum):
    """Record layout of a table: columnar (default) or row (Tables 8-9)."""

    COLUMNAR = "columnar"
    ROW = "row"
