"""RID allocation: ascending base RIDs, descending tail RIDs.

Section 3.2: inserts draw base RIDs from pre-allocated *insert ranges*;
Section 4.4: upon the first update of an update range, a block of unused
tail RIDs is pre-allocated for that range, and tail RIDs are assigned in
reverse order from the top of the 64-bit space so page-directory scans
for base pages never visit tail entries.

Both allocators are thread-safe: benchmark workloads allocate RIDs from
many writer threads concurrently.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

from ..errors import StorageError
from .types import BASE_RID_MAX, TAIL_RID_MAX, is_tail_rid


@dataclass
class TailBlock:
    """A contiguous block of tail RIDs owned by one update range.

    RIDs inside the block descend from :attr:`start_rid`; the *i*-th
    record appended to the range's tail pages receives
    ``start_rid - i``. Offsets therefore increase in time order even
    though RIDs decrease, which keeps tail-page slots append-only.
    """

    start_rid: int
    size: int
    _used: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def allocate(self) -> int | None:
        """Return the next RID of this block, or None when exhausted."""
        with self._lock:
            if self._used >= self.size:
                return None
            rid = self.start_rid - self._used
            self._used += 1
            return rid

    def allocate_pair(self) -> tuple[int, int] | None:
        """Reserve two consecutive RIDs in one lock hold.

        The fused snapshot+update append wants both tail slots from a
        single latch acquisition; None when fewer than two RIDs remain
        (the caller falls back to single allocations, which may span
        blocks).
        """
        with self._lock:
            if self._used + 2 > self.size:
                return None
            rid = self.start_rid - self._used
            self._used += 2
            return rid, rid - 1

    def contains(self, rid: int) -> bool:
        """True when *rid* belongs to this block."""
        return self.start_rid - self.size < rid <= self.start_rid

    def offset_of(self, rid: int) -> int:
        """Time-ordered offset (0-based) of *rid* within the block."""
        if not self.contains(rid):
            raise ValueError("rid %d not in block %r" % (rid, self))
        return self.start_rid - rid

    def rid_at(self, offset: int) -> int:
        """Inverse of :meth:`offset_of`."""
        if not 0 <= offset < self.size:
            raise ValueError("offset %d out of block range" % offset)
        return self.start_rid - offset

    @property
    def used(self) -> int:
        """Number of RIDs handed out so far.

        Lock-free: the int read is atomic under the GIL, and every
        consumer (offset math, merge-notify thresholds) tolerates a
        reading one allocation stale — taking the allocation mutex
        here put a lock acquisition into every ``num_allocated`` call
        on the write hot path.
        """
        return self._used

    @property
    def exhausted(self) -> bool:
        """True when no RID is left in the block (lock-free read)."""
        return self._used >= self.size


class RIDAllocator:
    """Hands out base-RID ranges and tail-RID blocks for one table.

    Base RIDs ascend from 1 in fixed-size *insert ranges* (Section 3.2);
    tail RIDs descend from ``TAIL_RID_MAX`` in per-update-range blocks
    (Section 4.4). Both spaces never overlap by construction
    (:mod:`repro.core.types`).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._next_base_start = 1
        self._next_tail_start = TAIL_RID_MAX

    def reserve_base_range(self, size: int) -> int:
        """Reserve *size* consecutive base RIDs; return the first one."""
        if size <= 0:
            raise ValueError("size must be positive")
        with self._lock:
            first = self._next_base_start
            if first + size - 1 > BASE_RID_MAX:
                raise StorageError("base RID space exhausted")
            self._next_base_start += size
            return first

    def reserve_tail_block(self, size: int) -> TailBlock:
        """Reserve a descending block of *size* tail RIDs."""
        if size <= 0:
            raise ValueError("size must be positive")
        with self._lock:
            start = self._next_tail_start
            if not is_tail_rid(start - size + 1):
                raise StorageError("tail RID space exhausted")
            self._next_tail_start -= size
            return TailBlock(start_rid=start, size=size)

    def advance_base_to(self, next_start: int) -> None:
        """Raise the base cursor to *next_start* (recovery replay)."""
        with self._lock:
            if next_start > self._next_base_start:
                self._next_base_start = next_start

    def advance_tail_below(self, next_start: int) -> None:
        """Lower the tail cursor to *next_start* (recovery replay)."""
        with self._lock:
            if next_start < self._next_tail_start:
                self._next_tail_start = next_start

    @property
    def base_rids_allocated(self) -> int:
        """Total base RIDs reserved so far."""
        with self._lock:
            return self._next_base_start - 1

    @property
    def tail_rids_allocated(self) -> int:
        """Total tail RIDs reserved so far."""
        with self._lock:
            return TAIL_RID_MAX - self._next_tail_start


class MonotonicCounter:
    """A tiny thread-safe monotonically increasing counter.

    Used for page ids, merge batch ids, and other identifiers that only
    need uniqueness and order.
    """

    def __init__(self, start: int = 0) -> None:
        self._counter = itertools.count(start)
        self._lock = threading.Lock()
        self._last = start - 1

    def next(self) -> int:
        """Return the next value."""
        with self._lock:
            self._last = next(self._counter)
            return self._last

    def advance_to(self, value: int) -> None:
        """Ensure future :meth:`next` calls return values above *value*.

        Used when loading checkpoint images: page ids baked into the
        image must never be re-issued for new pages.
        """
        with self._lock:
            if value > self._last:
                self._counter = itertools.count(value + 1)
                self._last = value

    @property
    def last(self) -> int:
        """Most recently returned value."""
        with self._lock:
            return self._last
