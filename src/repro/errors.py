"""Exception hierarchy for the L-Store reproduction.

Every error raised by the library derives from :class:`LStoreError` so
that callers can catch one base class. Sub-hierarchies mirror the layers
of the system (storage, transactions, merge, recovery).
"""

from __future__ import annotations


class LStoreError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Storage layer
# ---------------------------------------------------------------------------

class StorageError(LStoreError):
    """Base class for storage-layer failures."""


class PageFullError(StorageError):
    """Raised when appending to a page that has no free slot left."""


class PageImmutableError(StorageError):
    """Raised on an attempt to overwrite a written slot of a write-once page.

    Tail pages in L-Store are strictly append-only and follow a
    write-once policy (Section 2.1 of the paper): once a value is written
    it is never overwritten, even if the writing transaction aborts.
    """


class PageDeallocatedError(StorageError):
    """Raised when reading a page that the epoch manager already reclaimed."""


class BufferPoolFullError(StorageError):
    """Raised when every frame of the buffer pool is pinned."""


class SerializationError(StorageError):
    """Raised when a page image cannot be encoded or decoded."""


class CorruptPageError(SerializationError):
    """Raised when a stored page image is truncated or fails its CRC.

    Carries enough context (page id, file offset) to identify the bad
    on-disk region without a debugger.
    """

    def __init__(self, message: str, *, page_id: int | None = None,
                 offset: int | None = None) -> None:
        super().__init__(message)
        self.page_id = page_id
        self.offset = offset


# ---------------------------------------------------------------------------
# Table / query layer
# ---------------------------------------------------------------------------

class TableError(LStoreError):
    """Base class for logical table-level failures."""


class DuplicateKeyError(TableError):
    """Raised when inserting a primary key that already exists."""


class KeyNotFoundError(TableError):
    """Raised when a primary-key lookup finds no record."""


class RecordDeletedError(TableError):
    """Raised when reading a record whose latest version is a delete."""


class SchemaMismatchError(TableError):
    """Raised when a statement does not match the table schema."""


class InconsistentReadError(TableError):
    """Raised when column pages of one range expose different TPS values.

    Lemma 3 of the paper guarantees such reads are always *detectable*;
    Theorem 2 guarantees they are always *repairable*. The read path
    raises this error internally and then repairs the snapshot, so user
    code normally never observes it.
    """


# ---------------------------------------------------------------------------
# Transaction layer
# ---------------------------------------------------------------------------

class TransactionError(LStoreError):
    """Base class for concurrency-control failures."""


class TransactionAborted(TransactionError):
    """Raised when a transaction was aborted (by conflict or explicitly)."""


class WriteWriteConflict(TransactionAborted):
    """Raised when two in-flight transactions try to update one record."""


class ValidationFailure(TransactionAborted):
    """Raised when OCC read validation fails at pre-commit."""


class BackpressureError(TransactionAborted):
    """Raised when admission control rejects a write past the hard
    backlog watermark (:mod:`repro.health.backpressure`).

    A subclass of :class:`TransactionAborted` on purpose: inside a
    transaction the statement aborts the transaction like any other
    conflict, and the :class:`~repro.txn.worker.TransactionWorker`
    treats it as retryable — back off, let the merge daemon drain,
    try again. ``retryable`` is True so callers can distinguish the
    shed-load case from a poisoned component without string matching.
    """

    retryable = True

    def __init__(self, message: str, *, backlog: int | None = None,
                 watermark: int | None = None) -> None:
        super().__init__(message)
        self.backlog = backlog
        self.watermark = watermark


class DeadlineExceeded(TransactionAborted):
    """Raised when a transaction outlives its per-transaction deadline.

    Statement paths abort the transaction and re-raise; the
    :class:`~repro.txn.worker.TransactionWorker` gives up instead of
    retrying (the deadline bounds the *total* attempt budget).
    """

    retryable = False


class IllegalTransactionState(TransactionError):
    """Raised when an operation is invalid for the transaction's state."""


# ---------------------------------------------------------------------------
# Merge / lineage layer
# ---------------------------------------------------------------------------

class MergeError(LStoreError):
    """Base class for merge-process failures."""


class LineageError(MergeError):
    """Raised when TPS lineage would move backwards (monotonicity breach)."""


# ---------------------------------------------------------------------------
# Durability layer
# ---------------------------------------------------------------------------

class WALError(LStoreError):
    """Base class for write-ahead-log failures."""


class RecoveryError(WALError):
    """Raised when crash recovery meets a log it cannot replay."""
