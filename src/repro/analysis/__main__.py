"""Command-line entry point: ``python -m repro.analysis <command>``.

Commands:

- ``lint``       — run the REPRO-L00x rules over ``src/repro``
- ``lockorder``  — static nested-acquisition graph + cycle/rank check
- ``typecheck``  — mypy over the typed-core list (skips if absent)
- ``ruff``       — ruff hygiene over ``src/repro`` (skips if absent)
- ``all``        — everything above; nonzero exit on any failure
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .gates import repo_root, run_ruff, run_typecheck
from .lint import lint_tree
from .lockorder import analyze_tree


def _source_root() -> Path:
    return repo_root() / "src" / "repro"


def _run_lint(verbose: bool) -> int:
    result = lint_tree(_source_root())
    output = result.render() if (verbose or not result.clean) else (
        "lint clean: 0 violations, %d suppressed"
        % len(result.suppressed))
    print(output)
    return 0 if result.clean else 1


def _run_lockorder(verbose: bool) -> int:
    report = analyze_tree(_source_root())
    print(report.render(verbose=verbose))
    return 0 if report.clean else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.analysis")
    parser.add_argument(
        "command",
        choices=("lint", "lockorder", "typecheck", "ruff", "all"))
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print suppressed findings / all edges")
    options = parser.parse_args(argv)
    runners = {
        "lint": lambda: _run_lint(options.verbose),
        "lockorder": lambda: _run_lockorder(options.verbose),
        "typecheck": run_typecheck,
        "ruff": run_ruff,
    }
    if options.command == "all":
        status = 0
        for name in ("lint", "lockorder", "typecheck", "ruff"):
            print("== %s ==" % name)
            status = max(status, runners[name]())
        return status
    return runners[options.command]()


if __name__ == "__main__":
    sys.exit(main())
