"""Typed-core and hygiene gates (mypy / ruff), tolerant of absence.

The repro container intentionally ships no third-party tooling, so
these runners skip with a notice (exit 0) when mypy or ruff is not
importable/installed; the CI ``analysis`` leg installs both and gets
the real gate.  Configuration lives at the repo root (``mypy.ini``,
``ruff.toml``) so editors and CI agree.
"""

from __future__ import annotations

import importlib.util
import shutil
import subprocess
import sys
from pathlib import Path

#: Modules held to strict typing: the stable core value/config layer,
#: the observability package, and this analysis package itself.
TYPED_CORE: tuple[str, ...] = (
    "src/repro/core/types.py",
    "src/repro/core/config.py",
    "src/repro/core/rid.py",
    "src/repro/obs",
    "src/repro/analysis",
)


def repo_root() -> Path:
    """The repository root (three levels above this file's package)."""
    return Path(__file__).resolve().parents[3]


def run_typecheck() -> int:
    """Run mypy over the typed-core list; skip cleanly if absent."""
    if importlib.util.find_spec("mypy") is None:
        print("analysis: mypy not installed; skipping typecheck "
              "(the CI analysis leg installs and enforces it)")
        return 0
    root = repo_root()
    command = [
        sys.executable, "-m", "mypy",
        "--config-file", str(root / "mypy.ini"),
    ] + [str(root / target) for target in TYPED_CORE]
    return subprocess.call(command, cwd=root)


def run_ruff() -> int:
    """Run ruff over src/repro; skip cleanly if absent."""
    if importlib.util.find_spec("ruff") is None and shutil.which("ruff") is None:
        print("analysis: ruff not installed; skipping hygiene check "
              "(the CI analysis leg installs and enforces it)")
        return 0
    root = repo_root()
    if shutil.which("ruff") is not None:
        command = ["ruff", "check", "src/repro"]
    else:
        command = [sys.executable, "-m", "ruff", "check", "src/repro"]
    return subprocess.call(command, cwd=root)
