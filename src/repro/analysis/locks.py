"""Runtime lockset witness (Eraser-style) for the named hot locks.

Disabled by default: :func:`make_lock` returns a plain
``threading.Lock`` unless ``REPRO_LOCK_CHECK=1`` was set when this
module was imported, so the instrumented path costs the engine nothing
in normal runs (``benchmarks/test_lock_check_overhead.py`` pins this).

With ``REPRO_LOCK_CHECK=1`` every named hot lock becomes a
:class:`CheckedLock` proxy that records a per-thread hold-stack and, on
each nested acquisition, checks the declared rank order
(:data:`repro.analysis.annotations.HOT_LOCKS`) and a global
first-witness order table.  Observed violations — rank inversions,
inconsistent pairwise order across the run, same-name nesting, and
callbacks fired under a hot lock (:func:`guard_callback`) — are
recorded rather than raised, so one bad interleaving does not poison
engine state mid-operation; the test harness asserts
:func:`assert_clean` after every test when the witness is enabled.
"""

from __future__ import annotations

import os
import threading
import traceback
from dataclasses import dataclass, field

from .annotations import HOT_LOCKS

#: True when REPRO_LOCK_CHECK was enabled at import time.  Import-time
#: (not per-call) so engine hot paths can gate guard calls on a module
#: constant and pay a single global load when disabled.
ENABLED: bool = os.environ.get("REPRO_LOCK_CHECK", "0") not in ("", "0")


@dataclass
class LockOrderViolation:
    """One recorded witness violation."""

    kind: str  # "rank" | "order" | "self-nest" | "callback"
    detail: str
    stack: str = field(default="", repr=False)

    def __str__(self) -> str:
        return "[%s] %s" % (self.kind, self.detail)


_registry_lock = threading.Lock()
#: (outer, inner) name pair -> first witness description.
_order_seen: dict[tuple[str, str], str] = {}
_violations: list[LockOrderViolation] = []
_tls = threading.local()


def _held_stack() -> list["CheckedLock"]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


def _record(kind: str, detail: str) -> None:
    stack = "".join(traceback.format_stack(limit=12)[:-2])
    with _registry_lock:
        _violations.append(LockOrderViolation(kind, detail, stack))


def _note_acquired(lock: "CheckedLock") -> None:
    held = _held_stack()
    for outer in held:
        if outer.name == lock.name:
            if not lock.decl.allow_sibling_nesting or outer is lock:
                _record(
                    "self-nest",
                    "lock %r acquired while %r already held by this "
                    "thread" % (lock.name, outer.name))
        elif outer.rank >= lock.rank:
            _record(
                "rank",
                "acquired %r (rank %d) while holding %r (rank %d); "
                "declared order requires strictly increasing ranks"
                % (lock.name, lock.rank, outer.name, outer.rank))
        pair = (outer.name, lock.name)
        inverse = (lock.name, outer.name)
        # Lock-free membership probe (dict reads are atomic under the
        # GIL); only first witnesses pay the registry mutex.
        if inverse in _order_seen and outer.name != lock.name:
            _record(
                "order",
                "observed %r -> %r but the inverse order was first "
                "witnessed at: %s" % (outer.name, lock.name,
                                      _order_seen[inverse]))
        elif pair not in _order_seen:
            site = traceback.extract_stack(limit=4)[0]
            with _registry_lock:
                _order_seen.setdefault(
                    pair, "%s:%d" % (site.filename, site.lineno or 0))
    held.append(lock)


def _note_released(lock: "CheckedLock") -> None:
    held = _held_stack()
    # Release may be out of LIFO order (rare but legal for Lock).
    for i in range(len(held) - 1, -1, -1):
        if held[i] is lock:
            del held[i]
            return


class CheckedLock:
    """An instrumented stand-in for ``threading.Lock``.

    Supports the same acquire/release/context-manager surface the
    engine uses, delegating to a real lock and recording hold-sets.
    """

    __slots__ = ("name", "rank", "decl", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.decl = HOT_LOCKS[name]
        self.rank = self.decl.rank
        self._lock = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._lock.acquire(blocking, timeout)
        if ok:
            _note_acquired(self)
        return ok

    def release(self) -> None:
        _note_released(self)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<CheckedLock %s rank=%d>" % (self.name, self.rank)


def make_lock(name: str) -> "threading.Lock | CheckedLock":
    """Construct the named hot lock *name*.

    The one constructor every named hot lock in the engine goes
    through: a plain ``threading.Lock`` when the witness is disabled
    (the default — zero overhead), a :class:`CheckedLock` proxy when
    ``REPRO_LOCK_CHECK=1``.  The name must be declared in
    :data:`repro.analysis.annotations.HOT_LOCKS`.
    """
    if name not in HOT_LOCKS:
        raise ValueError("undeclared hot lock name: %r" % (name,))
    if not ENABLED:
        return threading.Lock()
    return CheckedLock(name)


def held_hot_locks() -> tuple[str, ...]:
    """Names of the named hot locks held by the calling thread."""
    return tuple(lock.name for lock in _held_stack())


def guard_callback(description: str) -> None:
    """Record a violation if the calling thread holds any hot lock.

    Engine code invokes this (gated on :data:`ENABLED`) immediately
    before firing a user-visible callback — merge notifiers, commit and
    abort sinks, reclamation hooks — pinning the "callbacks only after
    release" discipline at runtime.
    """
    held = _held_stack()
    if held:
        _record(
            "callback",
            "%s fired while holding %s" % (
                description, [lock.name for lock in held]))


def violations() -> list[LockOrderViolation]:
    """Snapshot of every violation recorded so far."""
    with _registry_lock:
        return list(_violations)


def reset() -> None:
    """Clear recorded violations and the first-witness order table."""
    with _registry_lock:
        _violations.clear()
        _order_seen.clear()


def assert_clean() -> None:
    """Raise AssertionError listing every recorded violation."""
    found = violations()
    if found:
        summary = "\n".join(
            "%s\n%s" % (violation, violation.stack) for violation in found)
        raise AssertionError(
            "%d lock-discipline violation(s) witnessed:\n%s"
            % (len(found), summary))
