"""Declared hot-lock hierarchy and analysis hint tables.

This module is the single source of truth the concurrency tooling works
from.  Every *named hot lock* in the engine — the locks on write,
commit, merge, and WAL hot paths — is declared here with a rank, and its
creation site in the engine constructs it through
:func:`repro.analysis.locks.make_lock` with the declared name.  Both the
static lock-order extractor (:mod:`repro.analysis.lockorder`) and the
runtime lockset witness (:mod:`repro.analysis.locks`) resolve locks back
to these declarations, so the prose rules from earlier PRs ("notify only
after releasing the processing lock", "no I/O under the append latch")
become mechanically checkable.

Rank discipline: a thread may only acquire a lock whose rank is
*strictly greater* than the rank of every named lock it already holds.
Lower rank = acquired earlier / held outermost.  The order below is the
order the code actually implies (merge task processing is the outermost
long-held lock; page latches and the transaction-manager mutex are
leaves that never wrap another named acquisition).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LockDecl:
    """One named hot lock: its rank and where/why it exists."""

    name: str
    rank: int
    description: str
    #: Locks with the same name may legitimately nest (e.g. two page
    #: latches of *different* page objects in one fused operation).
    allow_sibling_nesting: bool = False


#: The declared hot-lock hierarchy, outermost first.
HOT_LOCKS: dict[str, LockDecl] = {
    decl.name: decl
    for decl in (
        LockDecl(
            "merge.processing", 10,
            "MergeEngine._processing — serialises merge task execution; "
            "held across an entire merge pass (the paper's single merge "
            "thread)."),
        LockDecl(
            "merge.queue", 15,
            "MergeEngine._lock — guards the pending-task queue; taken "
            "briefly by notifiers and by the merge loop when draining."),
        LockDecl(
            "table.insert", 20,
            "Table._insert_lock — serialises creation of new insert "
            "ranges."),
        LockDecl(
            "table.ranges", 25,
            "Table._range_lock — guards the update-range map."),
        LockDecl(
            "range.merge", 30,
            "UpdateRange.merge_lock — serialises merges of one range "
            "alongside the background merge thread."),
        LockDecl(
            "range.tail", 35,
            "UpdateRange._tail_lock — guards lazy creation of the "
            "range's regular tail segment."),
        LockDecl(
            "insert.alloc", 40,
            "InsertRange._lock — base-RID slot allocator for one insert "
            "range."),
        LockDecl(
            "segment.alloc", 45,
            "TailSegment._lock — tail-slot allocator; WAL block "
            "reservation is logged under it (log-before-publish)."),
        LockDecl(
            "wal.append", 50,
            "LogManager._lock — the WAL append latch; buffer appends "
            "only, group-commit fsync happens outside it."),
        LockDecl(
            "range.watermark", 55,
            "UpdateRange.lock — merge lineage watermarks (merged_upto, "
            "TPS, chain swap)."),
        LockDecl(
            "range.dirty", 60,
            "UpdateRange._dirty_lock — incremental dirty-offset "
            "patch-set and version horizons."),
        LockDecl(
            "epoch", 70,
            "EpochManager._lock — retired-page batches; on_reclaim "
            "callbacks run outside it."),
        LockDecl(
            "page", 75,
            "Page/BytesPage/RowPage._lock — per-page slot latch; pure "
            "in-memory writes only.",
            allow_sibling_nesting=True),
        LockDecl(
            "txn.manager", 80,
            "TransactionManager._lock — transaction table mutations; "
            "commit/abort sinks fire after release."),
    )
}


def rank_of(name: str) -> int:
    """Rank of a named hot lock (KeyError for unknown names)."""
    return HOT_LOCKS[name].rank


#: Attribute / function names whose *invocation* is treated as a
#: user-visible callback by REPRO-L002 and the runtime witness: firing
#: one of these while holding a named hot lock risks re-entrant
#: deadlock and arbitrary user code under an engine latch.
CALLBACK_NAMES: frozenset[str] = frozenset({
    "merge_notifier",
    "commit_sink",
    "abort_sink",
    "on_reclaim",
})

#: Callback name *suffixes* (matched after an underscore) — catches
#: future `foo_sink` / `foo_notifier` style hooks without enumerating.
CALLBACK_SUFFIXES: tuple[str, ...] = ("_sink", "_notifier", "_callback", "_hook")

#: Method names that perform file I/O when invoked on a file-like
#: receiver (receiver text containing "file"), banned under hot locks.
FILE_IO_METHODS: frozenset[str] = frozenset({
    "write", "read", "flush", "fsync", "seek", "truncate", "close",
})

#: ``os.`` functions that hit the filesystem, banned under hot locks.
OS_FILE_FUNCS: frozenset[str] = frozenset({
    "fsync", "rename", "replace", "remove", "unlink", "makedirs",
    "fdopen", "open", "ftruncate",
})

#: Receiver-attribute → class hints used by the static lock-order
#: analysis to resolve ``self.<attr>.method()`` calls when the method
#: name alone is ambiguous or denylisted (e.g. ``self._log.append``).
RECEIVER_CLASS_HINTS: dict[str, str] = {
    "wal": "TableWAL",
    "_log": "LogManager",
    "log": "LogManager",
    "epoch_manager": "EpochManager",
    "txn_manager": "TransactionManager",
    "merge_engine": "MergeEngine",
    "segment": "TailSegment",
    "tail": "TailSegment",
    "insert_range": "InsertRange",
    "update_range": "UpdateRange",
}

#: Method names too generic to resolve by uniqueness alone (they
#: collide with list/dict/set/file methods); only resolved through
#: RECEIVER_CLASS_HINTS or an explicit ``self.`` receiver.
GENERIC_METHOD_NAMES: frozenset[str] = frozenset({
    "append", "add", "get", "set", "pop", "update", "remove", "extend",
    "clear", "sort", "items", "keys", "values", "put", "join", "start",
    "close", "write", "read", "flush", "next", "copy", "count", "index",
    "insert", "discard", "setdefault", "release", "acquire", "locked",
})
