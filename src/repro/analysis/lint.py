"""Engine-specific AST lint rules (REPRO-L001 … REPRO-L004).

The rules encode the concurrency and observability disciplines earlier
PRs established in prose:

- **REPRO-L001** — every *statement-form* ``lock.acquire()`` must be
  immediately followed by a ``try:`` whose ``finally:`` releases the
  same lock.  (The explicit acquire/finally-release idiom is the hot
  path's replacement for ``with``; an unpaired acquire leaks the lock
  on any exception.)
- **REPRO-L002** — no callback/notifier/sink invocation, ``time.sleep``,
  file I/O, or ``np.*`` call inside a region holding a *named hot lock*
  (``with`` block or acquire/finally region resolved through the
  :mod:`repro.analysis.annotations` table).
- **REPRO-L003** — no ``stat_*`` attribute stores outside ``obs/``
  unless the attribute is a registry-backed ``CounterStat``/``GaugeStat``
  descriptor alias declared somewhere in the tree: instruments come
  from the metrics registry, not ad-hoc ints.
- **REPRO-L004** — no wall-clock reads (``time.time``, ``datetime.now``)
  in commit-ordering code (``core/``, ``txn/``, ``wal/``, ``exec/``):
  commit ordering must come from ``SynchronizedClock``.

Suppression: ``# repro: allow(L002) <reason>`` on the violating line or
the line above.  A suppression without a written reason is itself a
violation (REPRO-L000), so every exception stays visible and justified.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from .annotations import (
    CALLBACK_NAMES,
    CALLBACK_SUFFIXES,
    FILE_IO_METHODS,
    OS_FILE_FUNCS,
)
from .model import ParsedModule, Project

RULE_IDS = ("L001", "L002", "L003", "L004")

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\(\s*([A-Za-z0-9_,\s-]+?)\s*\)\s*(.*)$")


@dataclass
class Violation:
    """One lint finding."""

    rule: str
    path: str
    line: int
    message: str
    suppressed: bool = False
    reason: str | None = None

    def __str__(self) -> str:
        tag = "REPRO-%s" % self.rule
        text = "%s:%d: %s %s" % (self.path, self.line, tag, self.message)
        if self.suppressed:
            text += "  [suppressed: %s]" % (self.reason,)
        return text


@dataclass
class LintResult:
    """Outcome of a lint run."""

    violations: list[Violation]        # unsuppressed (includes L000)
    suppressed: list[Violation]

    @property
    def clean(self) -> bool:
        return not self.violations

    def render(self) -> str:
        parts = [str(v) for v in self.violations]
        parts.extend(str(v) for v in self.suppressed)
        parts.append(
            "%d violation(s), %d suppressed"
            % (len(self.violations), len(self.suppressed)))
        return "\n".join(parts)


# ---------------------------------------------------------------------------
# Suppression table
# ---------------------------------------------------------------------------


class _Suppressions:
    """Per-module map of line -> {rule -> reason}."""

    def __init__(self, module: ParsedModule) -> None:
        self._by_line: dict[int, dict[str, str]] = {}
        self.missing_reason: list[int] = []
        self.entries: list[tuple[int, str, str]] = []
        for lineno, text in enumerate(module.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            rules = [
                rule.strip().upper().replace("REPRO-", "")
                for rule in match.group(1).split(",")
            ]
            reason = match.group(2).strip()
            if not reason:
                self.missing_reason.append(lineno)
                continue
            targets = [lineno]
            # A whole-line comment also covers the next source line.
            if text.lstrip().startswith("#"):
                targets.append(lineno + 1)
            for rule in rules:
                self.entries.append((lineno, rule, reason))
                for target in targets:
                    self._by_line.setdefault(target, {})[rule] = reason

    def lookup(self, rule: str, line: int) -> str | None:
        return self._by_line.get(line, {}).get(rule)


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def _statement_positions(
        func: ast.AST) -> dict[int, tuple[list[ast.stmt], int, ast.stmt | None]]:
    """Map id(stmt) -> (containing list, index, owning statement)."""
    positions: dict[int, tuple[list[ast.stmt], int, ast.stmt | None]] = {}

    def note(stmts: list[ast.stmt], owner: ast.stmt | None) -> None:
        for index, stmt in enumerate(stmts):
            positions[id(stmt)] = (stmts, index, owner)
            for child_list in _child_blocks(stmt):
                note(child_list, stmt)

    body = getattr(func, "body", [])
    note(body, None)
    return positions


def _child_blocks(stmt: ast.stmt) -> list[list[ast.stmt]]:
    blocks: list[list[ast.stmt]] = []
    for attr in ("body", "orelse", "finalbody"):
        value = getattr(stmt, attr, None)
        if isinstance(value, list) and value \
                and isinstance(value[0], ast.stmt):
            blocks.append(value)
    for handler in getattr(stmt, "handlers", []) or []:
        blocks.append(handler.body)
    return blocks


def _successor(stmt: ast.stmt,
               positions: dict[int, tuple[list[ast.stmt], int,
                                          ast.stmt | None]]
               ) -> ast.stmt | None:
    """The statement that runs after *stmt*'s block falls through."""
    current: ast.stmt | None = stmt
    while current is not None:
        entry = positions.get(id(current))
        if entry is None:
            return None
        stmts, index, owner = entry
        if index + 1 < len(stmts):
            return stmts[index + 1]
        if isinstance(owner, (ast.For, ast.While, ast.AsyncFor)):
            return None  # falls back to the loop header, not a successor
        current = owner
    return None


def _bare_acquire(stmt: ast.stmt) -> tuple[ast.expr, str] | None:
    """Return (receiver expr, receiver text) for ``X.acquire(...)``."""
    if not (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)):
        return None
    func = stmt.value.func
    if isinstance(func, ast.Attribute) and func.attr == "acquire":
        return func.value, ast.unparse(func.value)
    return None


def _releases_in_finally(try_stmt: ast.Try, receiver_text: str) -> bool:
    for node in ast.walk(ast.Module(body=try_stmt.finalbody,
                                    type_ignores=[])):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "release"
                and ast.unparse(node.func.value) == receiver_text):
            return True
    return False


def _functions(module: ParsedModule) -> Iterator[tuple[str | None, ast.AST]]:
    """Yield (enclosing class name, function node) pairs."""
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, node
            yield from _nested(None, node)
        elif isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield node.name, stmt
                    yield from _nested(node.name, stmt)


def _nested(class_name: str | None,
            func: ast.AST) -> Iterator[tuple[str | None, ast.AST]]:
    for node in ast.walk(func):
        if node is not func and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield class_name, node


def _local_lock_aliases(func: ast.AST, class_name: str | None,
                        project: Project) -> dict[str, str]:
    """``lock = self._lock`` style aliases inside *func*."""
    aliases: dict[str, str] = {}
    for node in ast.walk(func):
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            resolved = project.resolve_lock_expr(node.value, class_name)
            if resolved is not None:
                aliases[node.targets[0].id] = resolved
    return aliases


def _root_name(expr: ast.expr) -> str | None:
    while isinstance(expr, ast.Attribute):
        expr = expr.value
    if isinstance(expr, ast.Name):
        return expr.id
    return None


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


def _check_l001(module: ParsedModule, project: Project
                ) -> Iterator[Violation]:
    for class_name, func in _functions(module):
        positions = _statement_positions(func)
        for stmt in ast.walk(func):
            if not isinstance(stmt, ast.stmt):
                continue
            acquired = _bare_acquire(stmt)
            if acquired is None:
                continue
            _receiver, text = acquired
            successor = _successor(stmt, positions)
            if (isinstance(successor, ast.Try)
                    and _releases_in_finally(successor, text)):
                continue
            yield Violation(
                "L001", module.path, stmt.lineno,
                "bare %s.acquire() is not immediately followed by a "
                "try/finally that releases it" % text)


_BANNED_CALL_CHECKS = "callback", "sleep", "file-io", "numpy"


def _banned_call(call: ast.Call) -> str | None:
    """Classify *call* if it is banned under a hot lock, else None."""
    func = call.func
    if isinstance(func, ast.Name):
        name = func.id
        if name == "open":
            return "file I/O (open)"
        if name in CALLBACK_NAMES or name.endswith(CALLBACK_SUFFIXES):
            return "callback %r" % name
        return None
    if not isinstance(func, ast.Attribute):
        return None
    attr = func.attr
    root = _root_name(func.value)
    if root == "time" and attr == "sleep":
        return "time.sleep"
    if root == "os" and attr in OS_FILE_FUNCS:
        return "file I/O (os.%s)" % attr
    if root == "np":
        return "numpy call (np.%s)" % attr
    if attr in CALLBACK_NAMES or attr.endswith(CALLBACK_SUFFIXES):
        return "callback %r" % attr
    if attr in FILE_IO_METHODS:
        receiver = ast.unparse(func.value).lower()
        if "file" in receiver or receiver in ("f", "fh"):
            return "file I/O (%s.%s)" % (ast.unparse(func.value), attr)
    return None


def _check_l002(module: ParsedModule, project: Project
                ) -> Iterator[Violation]:
    for class_name, func in _functions(module):
        positions = _statement_positions(func)
        aliases = _local_lock_aliases(func, class_name, project)
        regions: list[tuple[str, list[ast.stmt]]] = []
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.With):
                for item in stmt.items:
                    name = project.resolve_lock_expr(
                        item.context_expr, class_name, aliases)
                    if name is not None:
                        regions.append((name, stmt.body))
            elif isinstance(stmt, ast.stmt):
                acquired = _bare_acquire(stmt)
                if acquired is None:
                    continue
                receiver, _text = acquired
                name = project.resolve_lock_expr(
                    receiver, class_name, aliases)
                if name is None:
                    continue
                successor = _successor(stmt, positions)
                if isinstance(successor, ast.Try):
                    regions.append((name, successor.body + successor.orelse))
        for lock_name, body in regions:
            yield from _scan_region(module, lock_name, body)


def _scan_region(module: ParsedModule, lock_name: str,
                 body: list[ast.stmt]) -> Iterator[Violation]:
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue  # defined under the lock, not called under it
        if isinstance(node, ast.Call):
            kind = _banned_call(node)
            if kind is not None:
                yield Violation(
                    "L002", module.path, node.lineno,
                    "%s inside a region holding hot lock %r"
                    % (kind, lock_name))
        stack.extend(ast.iter_child_nodes(node))


def _check_l003(module: ParsedModule, project: Project
                ) -> Iterator[Violation]:
    if module.relpath.startswith("obs/"):
        return
    for node in ast.walk(module.tree):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if (isinstance(target, ast.Attribute)
                    and target.attr.startswith("stat_")
                    and target.attr not in project.stat_aliases):
                yield Violation(
                    "L003", module.path, node.lineno,
                    "ad-hoc stat attribute %r assigned outside obs/ "
                    "(instruments must come from the metrics registry)"
                    % target.attr)


_COMMIT_ORDER_DIRS = ("core/", "txn/", "wal/", "exec/")


def _check_l004(module: ParsedModule, project: Project
                ) -> Iterator[Violation]:
    if not module.relpath.startswith(_COMMIT_ORDER_DIRS):
        return
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)):
            continue
        attr = node.func.attr
        root = _root_name(node.func.value)
        wall_clock = (
            (root == "time" and attr in ("time", "time_ns"))
            or (root == "datetime" and attr in ("now", "utcnow", "today")))
        if wall_clock:
            yield Violation(
                "L004", module.path, node.lineno,
                "wall-clock read %s.%s in commit-ordering code; use "
                "SynchronizedClock" % (root, attr))


_RULES = (_check_l001, _check_l002, _check_l003, _check_l004)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def lint_project(project: Project) -> LintResult:
    """Run every rule over *project*, applying suppressions."""
    violations: list[Violation] = []
    suppressed: list[Violation] = []
    for module in project.modules:
        table = _Suppressions(module)
        for lineno in table.missing_reason:
            violations.append(Violation(
                "L000", module.path, lineno,
                "suppression without a written reason"))
        for rule in _RULES:
            for violation in rule(module, project):
                reason = table.lookup(violation.rule, violation.line)
                if reason is not None:
                    violation.suppressed = True
                    violation.reason = reason
                    suppressed.append(violation)
                else:
                    violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    suppressed.sort(key=lambda v: (v.path, v.line, v.rule))
    return LintResult(violations=violations, suppressed=suppressed)


def lint_tree(root: Path) -> LintResult:
    """Lint every module under *root*."""
    return lint_project(Project.load(root))


def lint_sources(sources: dict[str, str]) -> LintResult:
    """Lint in-memory sources (test entry point)."""
    return lint_project(Project.from_sources(sources))
