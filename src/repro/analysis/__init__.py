"""Invariants as code: concurrency lint, lock-order, and typing gates.

Eight PRs of this engine accumulated load-bearing concurrency
disciplines that lived only in prose — notify callbacks only after
releasing the merge processing lock, pair every bare ``acquire()`` with
a ``try/finally`` release, never do I/O or fire user hooks under a hot
latch, draw instruments from the metrics registry instead of inventing
``stat_*`` ints, and never read the wall clock on commit-ordering
paths.  This package turns those rules into tooling:

- :mod:`repro.analysis.annotations` — the declared hot-lock hierarchy
  (names, ranks) and analysis hint tables;
- :mod:`repro.analysis.locks` — :func:`~repro.analysis.locks.make_lock`
  (the constructor every named hot lock goes through) and the
  ``REPRO_LOCK_CHECK=1`` runtime lockset witness;
- :mod:`repro.analysis.lint` — the REPRO-L00x AST rules with
  ``# repro: allow(...) reason`` suppressions;
- :mod:`repro.analysis.lockorder` — static nested-acquisition graph
  extraction with cycle and rank validation;
- :mod:`repro.analysis.gates` — mypy/ruff runners that skip when the
  tools are absent (CI installs and enforces them).

Run everything with ``python -m repro.analysis all``.  Engine modules
import only :mod:`repro.analysis.locks` (stdlib-only, import-light);
the AST machinery loads solely under the CLI and tests.
"""

from __future__ import annotations

__all__ = ["annotations", "gates", "lint", "lockorder", "locks", "model"]
