"""Shared AST project model for the static analyses.

Loads every module under a source root once, then builds the lookup
tables the lint rules and the lock-order extractor both need:

- which ``self.<attr>`` assignments construct a named hot lock through
  :func:`repro.analysis.locks.make_lock` (the annotation table *is*
  code — declaring a lock and naming it are the same act);
- which ``stat_*`` attribute names are registry-backed descriptor
  aliases (``CounterStat`` / ``GaugeStat`` class-level declarations);
- an index of classes, methods, and module-level functions for
  best-effort call resolution.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .annotations import GENERIC_METHOD_NAMES, RECEIVER_CLASS_HINTS


@dataclass
class ParsedModule:
    """One parsed source file."""

    path: str          # display path (repo-relative when possible)
    relpath: str       # path relative to the scanned root, "/"-separated
    tree: ast.Module
    lines: list[str]


@dataclass
class FunctionInfo:
    """A function or method with its lexical context."""

    module: ParsedModule
    class_name: str | None
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef

    @property
    def qualname(self) -> str:
        if self.class_name:
            return "%s.%s" % (self.class_name, self.name)
        return self.name


@dataclass
class Project:
    """The loaded source tree plus resolution tables."""

    modules: list[ParsedModule] = field(default_factory=list)
    #: (class name, attribute) -> hot lock name, from make_lock() sites.
    lock_attrs: dict[tuple[str, str], str] = field(default_factory=dict)
    #: attribute -> hot lock name when unambiguous across all classes.
    unique_lock_attrs: dict[str, str] = field(default_factory=dict)
    #: stat_* attribute names declared as registry descriptor aliases.
    stat_aliases: set[str] = field(default_factory=set)
    #: class name -> {method name -> FunctionInfo}.
    classes: dict[str, dict[str, FunctionInfo]] = field(default_factory=dict)
    #: method name -> class names defining it (for uniqueness checks).
    method_classes: dict[str, set[str]] = field(default_factory=dict)
    #: function name -> FunctionInfos for module-level functions.
    module_funcs: dict[str, list[FunctionInfo]] = field(default_factory=dict)

    # -- loading -----------------------------------------------------------

    @classmethod
    def load(cls, root: Path) -> "Project":
        """Parse every ``*.py`` under *root* and build the tables."""
        sources: dict[str, str] = {}
        for path in sorted(root.rglob("*.py")):
            sources[str(path.relative_to(root))] = path.read_text()
        return cls.from_sources(sources, display_prefix=str(root))

    @classmethod
    def from_sources(cls, sources: dict[str, str],
                     display_prefix: str = "") -> "Project":
        """Build a project from in-memory sources (tests use this)."""
        project = cls()
        for relpath, source in sources.items():
            display = (
                "%s/%s" % (display_prefix, relpath) if display_prefix
                else relpath)
            tree = ast.parse(source, filename=display)
            module = ParsedModule(
                path=display,
                relpath=relpath.replace("\\", "/"),
                tree=tree,
                lines=source.splitlines())
            project.modules.append(module)
        project._index()
        return project

    # -- indexing ----------------------------------------------------------

    def _index(self) -> None:
        for module in self.modules:
            for node in module.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = FunctionInfo(module, None, node.name, node)
                    self.module_funcs.setdefault(node.name, []).append(info)
                elif isinstance(node, ast.ClassDef):
                    self._index_class(module, node)

    def _index_class(self, module: ParsedModule, cls: ast.ClassDef) -> None:
        methods = self.classes.setdefault(cls.name, {})
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(module, cls.name, stmt.name, stmt)
                methods[stmt.name] = info
                self.method_classes.setdefault(stmt.name, set()).add(cls.name)
                for sub in ast.walk(stmt):
                    self._note_lock_decl(cls.name, sub)
            elif isinstance(stmt, ast.Assign):
                self._note_stat_alias(stmt)
        self._rebuild_unique_lock_attrs()

    def _note_lock_decl(self, class_name: str, node: ast.AST) -> None:
        # self.<attr> = make_lock("name")
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            return
        target = node.targets[0]
        value = node.value
        if not (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            return
        if not (isinstance(value, ast.Call) and value.args
                and isinstance(value.args[0], ast.Constant)
                and isinstance(value.args[0].value, str)):
            return
        func = value.func
        callee = (func.id if isinstance(func, ast.Name)
                  else func.attr if isinstance(func, ast.Attribute)
                  else None)
        if callee != "make_lock":
            return
        self.lock_attrs[(class_name, target.attr)] = value.args[0].value

    def _note_stat_alias(self, stmt: ast.Assign) -> None:
        # Class-level:  stat_x = CounterStat("_stat_x", ...) / GaugeStat(...)
        if len(stmt.targets) != 1:
            return
        target = stmt.targets[0]
        if not (isinstance(target, ast.Name)
                and target.id.startswith("stat_")):
            return
        value = stmt.value
        if not isinstance(value, ast.Call):
            return
        func = value.func
        callee = (func.id if isinstance(func, ast.Name)
                  else func.attr if isinstance(func, ast.Attribute)
                  else None)
        if callee in ("CounterStat", "GaugeStat"):
            self.stat_aliases.add(target.id)

    def _rebuild_unique_lock_attrs(self) -> None:
        by_attr: dict[str, set[str]] = {}
        for (_cls, attr), name in self.lock_attrs.items():
            by_attr.setdefault(attr, set()).add(name)
        self.unique_lock_attrs = {
            attr: next(iter(names))
            for attr, names in by_attr.items() if len(names) == 1
        }

    # -- resolution --------------------------------------------------------

    def resolve_lock_expr(self, expr: ast.expr, class_name: str | None,
                          local_aliases: dict[str, str] | None = None
                          ) -> str | None:
        """Best-effort: resolve *expr* to a named hot lock, else None.

        ``self.<attr>`` resolves only through the exact (class, attr)
        declaration table — a plain ``threading.Lock`` stored under an
        attribute name that happens to collide with a hot lock's must
        not resolve.  Non-``self`` receivers fall back to the
        attribute-uniqueness table (e.g. ``update_range.merge_lock``).
        """
        if isinstance(expr, ast.Name):
            if local_aliases:
                return local_aliases.get(expr.id)
            return None
        if not isinstance(expr, ast.Attribute):
            return None
        if isinstance(expr.value, ast.Name) and expr.value.id == "self":
            if class_name is None:
                return None
            return self.lock_attrs.get((class_name, expr.attr))
        return self.unique_lock_attrs.get(expr.attr)

    def resolve_call(self, call: ast.Call,
                     class_name: str | None) -> FunctionInfo | None:
        """Best-effort: resolve a call to an analyzed function.

        Conservative by design — ambiguous or generic names (which
        collide with list/dict/file methods) stay unresolved rather
        than manufacture false lock-order edges.
        """
        func = call.func
        if isinstance(func, ast.Name):
            candidates = self.module_funcs.get(func.id, [])
            if len(candidates) == 1:
                return candidates[0]
            return None
        if not isinstance(func, ast.Attribute):
            return None
        method = func.attr
        receiver = func.value
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            if class_name is not None:
                return self.classes.get(class_name, {}).get(method)
            return None
        hint = self._receiver_hint(receiver)
        if hint is not None:
            return self.classes.get(hint, {}).get(method)
        if method in GENERIC_METHOD_NAMES:
            return None
        owners = self.method_classes.get(method, set())
        if len(owners) == 1:
            return self.classes[next(iter(owners))].get(method)
        return None

    @staticmethod
    def _receiver_hint(receiver: ast.expr) -> str | None:
        if isinstance(receiver, ast.Name):
            return RECEIVER_CLASS_HINTS.get(receiver.id)
        if (isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"):
            return RECEIVER_CLASS_HINTS.get(receiver.attr)
        return None
