"""Static nested-acquisition analysis over the named hot locks.

Walks every function, simulating the lexically held set of *named hot
locks* (``with`` regions and acquire/finally regions, resolved through
the make_lock declaration table), and records:

- **direct edges** — lock B acquired lexically inside a region holding
  lock A;
- **call edges** — a call made while holding A to a function whose
  transitive acquisition set (best-effort interprocedural fixpoint over
  resolvable calls) contains B.

The resulting digraph must be acyclic and every edge must agree with
the declared rank order (:data:`repro.analysis.annotations.HOT_LOCKS`):
outer rank strictly below inner rank, same-name edges allowed only for
locks declared ``allow_sibling_nesting`` (page latches).  Resolution is
deliberately conservative — an unresolvable call contributes no edges —
so the graph under-approximates; the runtime lockset witness
(:mod:`repro.analysis.locks`) provides the dynamic complement on the
concurrency test legs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .annotations import HOT_LOCKS
from .lint import (
    _bare_acquire,
    _local_lock_aliases,
    _releases_in_finally,
    _statement_positions,
    _successor,
)
from .model import FunctionInfo, ParsedModule, Project


@dataclass
class Edge:
    """One observed outer -> inner ordering with witness sites."""

    outer: str
    inner: str
    sites: list[str] = field(default_factory=list)


@dataclass
class LockOrderReport:
    """Outcome of the static analysis."""

    edges: dict[tuple[str, str], Edge]
    cycles: list[list[str]]
    rank_violations: list[str]

    @property
    def clean(self) -> bool:
        return not self.cycles and not self.rank_violations

    def render(self, verbose: bool = False) -> str:
        parts: list[str] = []
        if verbose or not self.clean:
            for edge in sorted(self.edges.values(),
                               key=lambda e: (e.outer, e.inner)):
                parts.append("%s -> %s  (%s)" % (
                    edge.outer, edge.inner, ", ".join(edge.sites[:3])))
        for cycle in self.cycles:
            parts.append("CYCLE: " + " -> ".join(cycle))
        parts.extend("RANK: " + v for v in self.rank_violations)
        parts.append(
            "%d edge(s), %d cycle(s), %d rank violation(s)"
            % (len(self.edges), len(self.cycles),
               len(self.rank_violations)))
        return "\n".join(parts)


@dataclass
class _Summary:
    """Per-function extraction result."""

    acquired: set[str] = field(default_factory=set)
    #: (call node, held locks at the call site, enclosing class).
    calls: list[tuple[ast.Call, tuple[str, ...], str | None, str]] = \
        field(default_factory=list)
    #: (outer, inner, site) direct lexical nestings.
    direct: list[tuple[str, str, str]] = field(default_factory=list)


class _Extractor:
    """Walks one function body tracking the lexical hot-lock held set."""

    def __init__(self, project: Project, module: ParsedModule,
                 class_name: str | None, func: ast.AST) -> None:
        self.project = project
        self.module = module
        self.class_name = class_name
        self.func = func
        self.positions = _statement_positions(func)
        self.aliases = _local_lock_aliases(func, class_name, project)
        self.summary = _Summary()

    def run(self) -> _Summary:
        self._walk(list(getattr(self.func, "body", [])), [])
        return self.summary

    def _site(self, node: ast.AST) -> str:
        return "%s:%d" % (self.module.path, getattr(node, "lineno", 0))

    def _push(self, name: str, node: ast.AST,
              held: list[str]) -> None:
        self.summary.acquired.add(name)
        for outer in held:
            self.summary.direct.append((outer, name, self._site(node)))

    def _walk(self, stmts: list[ast.stmt], held: list[str]) -> None:
        index = 0
        while index < len(stmts):
            stmt = stmts[index]
            index += 1
            if isinstance(stmt, ast.With):
                inner = list(held)
                pushed = 0
                for item in stmt.items:
                    name = self.project.resolve_lock_expr(
                        item.context_expr, self.class_name, self.aliases)
                    self._scan_expressions(item.context_expr, held)
                    if name is not None:
                        self._push(name, stmt, inner)
                        inner.append(name)
                        pushed += 1
                self._walk(stmt.body, inner)
                continue
            acquired = _bare_acquire(stmt)
            if acquired is not None:
                receiver, text = acquired
                name = self.project.resolve_lock_expr(
                    receiver, self.class_name, self.aliases)
                successor = _successor(stmt, self.positions)
                if (name is not None and isinstance(successor, ast.Try)
                        and _releases_in_finally(successor, text)):
                    self._push(name, stmt, held)
                    # The guarded region is the try body; walk it with
                    # the lock held, then skip past the Try when it is
                    # the next statement in this block.
                    inner = held + [name]
                    self._walk(successor.body, inner)
                    self._walk(successor.orelse, inner)
                    self._walk(successor.finalbody, held)
                    for handler in successor.handlers:
                        self._walk(handler.body, inner)
                    if index < len(stmts) and stmts[index] is successor:
                        index += 1
                    continue
            # Generic statement: recurse into child blocks with the
            # same held set, and scan embedded expressions for calls.
            self._scan_expressions(stmt, held, skip_blocks=True)
            for block in _stmt_blocks(stmt):
                self._walk(block, held)

    def _scan_expressions(self, node: ast.AST, held: list[str],
                          skip_blocks: bool = False) -> None:
        stack: list[ast.AST] = []
        if skip_blocks:
            for child in ast.iter_child_nodes(node):
                if not isinstance(child, ast.stmt):
                    stack.append(child)
        else:
            stack.append(node)
        while stack:
            current = stack.pop()
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.Lambda)):
                continue  # deferred execution — not under this held set
            if isinstance(current, ast.Call):
                self.summary.calls.append(
                    (current, tuple(held), self.class_name,
                     self._site(current)))
            for child in ast.iter_child_nodes(current):
                if not isinstance(child, ast.stmt):
                    stack.append(child)


def _stmt_blocks(stmt: ast.stmt) -> list[list[ast.stmt]]:
    blocks: list[list[ast.stmt]] = []
    for attr in ("body", "orelse", "finalbody"):
        value = getattr(stmt, attr, None)
        if isinstance(value, list) and value \
                and isinstance(value[0], ast.stmt):
            blocks.append(value)
    for handler in getattr(stmt, "handlers", []) or []:
        blocks.append(handler.body)
    return blocks


# ---------------------------------------------------------------------------
# Analysis driver
# ---------------------------------------------------------------------------


def _function_key(info: FunctionInfo) -> tuple[str, str]:
    return (info.module.relpath, info.qualname)


def analyze_project(project: Project) -> LockOrderReport:
    """Extract the nested-acquisition graph and validate it."""
    summaries: dict[tuple[str, str], _Summary] = {}
    infos: dict[tuple[str, str], FunctionInfo] = {}

    for methods in project.classes.values():
        for info in methods.values():
            infos[_function_key(info)] = info
    for overloads in project.module_funcs.values():
        for info in overloads:
            infos[_function_key(info)] = info

    for key, info in infos.items():
        summaries[key] = _Extractor(
            project, info.module, info.class_name, info.node).run()

    # Best-effort transitive acquisition sets (fixpoint with a
    # recursion guard for call cycles).
    effective: dict[tuple[str, str], set[str]] = {}

    def compute(key: tuple[str, str],
                visiting: set[tuple[str, str]]) -> set[str]:
        if key in effective:
            return effective[key]
        if key in visiting:
            return set()
        visiting.add(key)
        summary = summaries.get(key)
        acc: set[str] = set()
        if summary is not None:
            acc |= summary.acquired
            for call, _held, class_name, _site in summary.calls:
                callee = project.resolve_call(call, class_name)
                if callee is not None:
                    acc |= compute(_function_key(callee), visiting)
        visiting.discard(key)
        effective[key] = acc
        return acc

    edges: dict[tuple[str, str], Edge] = {}

    def note_edge(outer: str, inner: str, site: str) -> None:
        edge = edges.setdefault((outer, inner), Edge(outer, inner))
        if site not in edge.sites:
            edge.sites.append(site)

    for key, summary in summaries.items():
        for outer, inner, site in summary.direct:
            note_edge(outer, inner, site)
        for call, held, class_name, site in summary.calls:
            if not held:
                continue
            callee = project.resolve_call(call, class_name)
            if callee is None:
                continue
            for inner in compute(_function_key(callee), set()):
                for outer in held:
                    note_edge(outer, inner, site)

    cycles = _find_cycles(edges)
    rank_violations: list[str] = []
    for (outer, inner), edge in sorted(edges.items()):
        outer_decl = HOT_LOCKS.get(outer)
        inner_decl = HOT_LOCKS.get(inner)
        if outer_decl is None or inner_decl is None:
            continue
        if outer == inner:
            if not outer_decl.allow_sibling_nesting:
                rank_violations.append(
                    "%s nested inside itself at %s"
                    % (outer, ", ".join(edge.sites[:3])))
        elif outer_decl.rank >= inner_decl.rank:
            rank_violations.append(
                "%s (rank %d) held while acquiring %s (rank %d) at %s"
                % (outer, outer_decl.rank, inner, inner_decl.rank,
                   ", ".join(edge.sites[:3])))
    return LockOrderReport(edges=edges, cycles=cycles,
                           rank_violations=rank_violations)


def _find_cycles(edges: dict[tuple[str, str], Edge]) -> list[list[str]]:
    graph: dict[str, set[str]] = {}
    for outer, inner in edges:
        if outer != inner:
            graph.setdefault(outer, set()).add(inner)
            graph.setdefault(inner, set())
    cycles: list[list[str]] = []
    state: dict[str, int] = {}  # 0 unseen / 1 in-stack / 2 done
    path: list[str] = []

    def visit(node: str) -> None:
        state[node] = 1
        path.append(node)
        for succ in sorted(graph.get(node, ())):
            if state.get(succ, 0) == 0:
                visit(succ)
            elif state.get(succ) == 1:
                start = path.index(succ)
                cycles.append(path[start:] + [succ])
        path.pop()
        state[node] = 2

    for node in sorted(graph):
        if state.get(node, 0) == 0:
            visit(node)
    return cycles


def analyze_tree(root: Path) -> LockOrderReport:
    """Analyze every module under *root*."""
    return analyze_project(Project.load(root))


def analyze_sources(sources: dict[str, str]) -> LockOrderReport:
    """Analyze in-memory sources (test entry point)."""
    return analyze_project(Project.from_sources(sources))
