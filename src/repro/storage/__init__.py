"""Storage substrate: page serialization, page files, buffer pool."""

from .bufferpool import BufferPool, Frame
from .disk import PageFile
from .serialization import deserialize_page, serialize_page

__all__ = [
    "BufferPool",
    "Frame",
    "PageFile",
    "deserialize_page",
    "serialize_page",
]
