"""Buffer pool: pinned frames over a page file, LRU eviction, stealing.

The paper's prototype is memory resident, but its WAL discussion
(Section 5.2) reasons explicitly about the bufferpool *steal* policy —
dirty pages may be written out before their transactions commit — so
the substrate exists here, exercised by the durability tests.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..core.page import Page, RowPage
from ..errors import BufferPoolFullError, StorageError
from ..obs.registry import CounterStat, MetricsRegistry
from .disk import PageFile

AnyPage = Page | RowPage


@dataclass
class Frame:
    """One resident page with pin and dirty bookkeeping."""

    page: AnyPage
    pin_count: int = 0
    dirty: bool = False
    last_used: int = 0


class BufferPool:
    """Fixed-capacity page cache with LRU eviction and steal policy.

    ``fetch`` pins; callers must ``unpin`` (ideally via the ``pinned``
    context manager). Evicting a dirty page writes it back first —
    the *steal* policy; set ``allow_steal=False`` for a no-steal pool
    (eviction then skips dirty pages).
    """

    def __init__(self, page_file: PageFile, capacity: int, *,
                 allow_steal: bool = True,
                 metrics: MetricsRegistry | None = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._file = page_file
        self._capacity = capacity
        self._allow_steal = allow_steal
        self._frames: dict[int, Frame] = {}
        self._clock = 0
        self._lock = threading.Lock()
        if metrics is None:
            metrics = MetricsRegistry()
        self._stat_hits = metrics.counter(
            "storage.pool_hits", help="Fetches served from a resident frame")
        self._stat_misses = metrics.counter(
            "storage.pool_misses", help="Fetches that loaded from disk")
        self._stat_evictions = metrics.counter(
            "storage.pool_evictions", help="Frames evicted to make room")
        self._stat_steals = metrics.counter(
            "storage.pool_steals",
            help="Dirty frames written back at eviction (steal policy)")

    # -- statistics (registry-backed aliases) --------------------------------

    stat_hits = CounterStat(
        "_stat_hits", "Fetches served from a resident frame.")
    stat_misses = CounterStat(
        "_stat_misses", "Fetches that loaded from disk.")
    stat_evictions = CounterStat(
        "_stat_evictions", "Frames evicted to make room.")
    stat_steals = CounterStat(
        "_stat_steals", "Dirty frames written back at eviction.")

    # -- core operations -----------------------------------------------------

    def put(self, page: AnyPage, *, dirty: bool = True) -> None:
        """Insert a freshly created page (pinned by the caller? no: unpinned)."""
        with self._lock:
            if page.page_id in self._frames:
                raise StorageError(
                    "page %d already resident" % page.page_id)
            self._ensure_capacity()
            self._clock += 1
            self._frames[page.page_id] = Frame(page=page, dirty=dirty,
                                               last_used=self._clock)

    def fetch(self, page_id: int) -> AnyPage:
        """Return the page, loading from disk on a miss; pins the frame."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None:
                self._stat_hits.add()
                frame.pin_count += 1
                self._clock += 1
                frame.last_used = self._clock
                return frame.page
            self._stat_misses.add()
            self._ensure_capacity()
        page = self._file.read_page(page_id)
        with self._lock:
            existing = self._frames.get(page_id)
            if existing is not None:
                existing.pin_count += 1
                return existing.page
            self._clock += 1
            self._frames[page_id] = Frame(page=page, pin_count=1,
                                          last_used=self._clock)
            return page

    def unpin(self, page_id: int, *, dirty: bool = False) -> None:
        """Release one pin; optionally mark the frame dirty."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None or frame.pin_count <= 0:
                raise StorageError("unpin of unpinned page %d" % page_id)
            frame.pin_count -= 1
            if dirty:
                frame.dirty = True

    def mark_dirty(self, page_id: int) -> None:
        """Mark a resident page dirty."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None:
                raise StorageError("page %d not resident" % page_id)
            frame.dirty = True

    # -- eviction ------------------------------------------------------------

    def _ensure_capacity(self) -> None:
        """Evict (LRU) until a frame is free; caller holds the lock."""
        while len(self._frames) >= self._capacity:
            victim_id = None
            victim_used = None
            for page_id, frame in self._frames.items():
                if frame.pin_count > 0:
                    continue
                if frame.dirty and not self._allow_steal:
                    continue
                if victim_used is None or frame.last_used < victim_used:
                    victim_id = page_id
                    victim_used = frame.last_used
            if victim_id is None:
                raise BufferPoolFullError(
                    "all %d frames pinned (or dirty with no-steal)"
                    % self._capacity)
            frame = self._frames.pop(victim_id)
            self._stat_evictions.add()
            if frame.dirty:
                self._stat_steals.add()
                self._file.write_page(frame.page)

    # -- durability ------------------------------------------------------------

    def flush_all(self) -> int:
        """Write every dirty frame back; return the count written."""
        written = 0
        with self._lock:
            for frame in self._frames.values():
                if frame.dirty:
                    self._file.write_page(frame.page)
                    frame.dirty = False
                    written += 1
        self._file.sync()
        return written

    # -- context helper ------------------------------------------------------------

    class _Pinned:
        def __init__(self, pool: "BufferPool", page_id: int) -> None:
            self._pool = pool
            self._page_id = page_id
            self.page: AnyPage | None = None

        def __enter__(self) -> AnyPage:
            self.page = self._pool.fetch(self._page_id)
            return self.page

        def __exit__(self, *exc: object) -> None:
            self._pool.unpin(self._page_id)

    def pinned(self, page_id: int) -> "_Pinned":
        """``with pool.pinned(pid) as page:`` fetch/unpin bracket."""
        return self._Pinned(self, page_id)

    # -- introspection ------------------------------------------------------------

    @property
    def resident(self) -> int:
        """Number of frames in use."""
        return len(self._frames)

    @property
    def capacity(self) -> int:
        """Total frames."""
        return self._capacity

    def is_resident(self, page_id: int) -> bool:
        """True when *page_id* currently has a frame."""
        return page_id in self._frames
