"""Page serialization: columnar pages ⇄ bytes.

The paper persists base and tail pages "identically" through the page
directory; this module provides that on-disk image. All-integer pages
(the common case for the micro-benchmark schema) take a packed struct
fast path; mixed pages (∅ cells, arbitrary Python values) fall back to
pickle. The special null ∅ is preserved across round trips.

Every image is wrapped in a CRC envelope::

    b"LSP2" <u32 crc32 of body> <body = legacy LSPG image>

so a truncated or bit-flipped image is detected as
:class:`~repro.errors.CorruptPageError` instead of failing somewhere
inside ``pickle.loads``. Bare legacy ``LSPG`` images (written before the
envelope existed) are still readable — just unverified.

Sparse pages — tail pages with committed writes at non-contiguous slots
(possible after a crash truncates the log mid-block) — use a dedicated
``(slot, value)``-pair format, since the dense formats can only encode a
written prefix.

Byte-buffer pages (:class:`~repro.core.page.BytesPage`, the default
layout) serialize as their raw fixed-width buffer: the body payload is
the written prefix of the ``array('q')`` buffer verbatim, followed by
the null bitmap and the pickled sidecar of non-int64 cells. The CRC
therefore covers the exact bytes held in memory — the on-disk image IS
the in-memory buffer — and deserialization splices it back with one
C-level copy instead of a slot-by-slot rebuild. Sparse byte-buffer
pages fall back to the ``(slot, value)`` format and round-trip as
object-list pages (the two classes interoperate slot-for-slot).
"""

from __future__ import annotations

import pickle
import struct
import zlib

from ..core.page import BytesPage, Page, RowPage
from ..core.types import NULL, PageKind, is_null
from ..errors import CorruptPageError, SerializationError

_ENVELOPE_MAGIC = b"LSP2"
_ENVELOPE = struct.Struct("<4sI")  # magic, crc32 of body

_MAGIC = b"LSPG"
_HEADER = struct.Struct("<4sBBqiiqqi")
# magic, format, kind, page_id, capacity, column(+1, 0=None),
# tps_rid, merge_count, num_records

_FORMAT_INT64 = 1
_FORMAT_PICKLE = 2
_FORMAT_ROW_PICKLE = 3
_FORMAT_SPARSE = 4
_FORMAT_BYTES = 5  # raw buffer prefix + null bitmap + pickled sidecar

_KIND_CODES = {kind: code for code, kind in enumerate(PageKind)}
_KIND_FROM_CODE = {code: kind for kind, code in _KIND_CODES.items()}

#: Sentinel used inside the int64 fast path for the special null ∅.
_NULL_SENTINEL = -(1 << 62) + 7


def serialize_page(page: Page | RowPage) -> bytes:
    """Encode *page* (and its lineage) into a checksummed byte string."""
    body = _serialize_body(page)
    return _ENVELOPE.pack(_ENVELOPE_MAGIC, zlib.crc32(body)) + body


def _serialize_body(page: Page | RowPage) -> bytes:
    if isinstance(page, RowPage):
        rows = [page.read_row(slot) if page.is_written(slot) else None
                for slot in range(page.capacity)]
        payload = pickle.dumps(rows, protocol=pickle.HIGHEST_PROTOCOL)
        fmt = _FORMAT_ROW_PICKLE
        column = -1
    elif (isinstance(page, BytesPage)
          and (export := page.export_dense()) is not None):
        _, raw, null_bitmap, sidecar = export
        payload = bytes(raw) + null_bitmap + pickle.dumps(
            sidecar, protocol=pickle.HIGHEST_PROTOCOL)
        fmt = _FORMAT_BYTES
        column = -1 if page.column is None else page.column
    else:
        values = list(page.iter_values())
        column = -1 if page.column is None else page.column
        if len(values) != page.num_records:
            # Writes beyond a hole: the dense prefix formats would
            # silently drop them, so store explicit (slot, value) pairs.
            pairs = [(slot, page.peek_slot(slot))
                     for slot in range(page.capacity)
                     if page.is_written(slot)]
            payload = pickle.dumps(pairs, protocol=pickle.HIGHEST_PROTOCOL)
            fmt = _FORMAT_SPARSE
        else:
            fmt = _FORMAT_INT64
            for value in values:
                if type(value) is not int and not is_null(value):
                    fmt = _FORMAT_PICKLE
                    break
                if type(value) is int and not (-(1 << 62) < value < (1 << 63)):
                    fmt = _FORMAT_PICKLE
                    break
            if fmt == _FORMAT_INT64:
                packed = struct.pack(
                    "<%dq" % len(values),
                    *(_NULL_SENTINEL if is_null(v) else v for v in values))
                payload = packed
            else:
                payload = pickle.dumps(values,
                                       protocol=pickle.HIGHEST_PROTOCOL)
    header = _HEADER.pack(
        _MAGIC, fmt, _KIND_CODES[page.kind], page.page_id, page.capacity,
        column, page.tps_rid, page.merge_count, page.num_records)
    return header + payload


def deserialize_page(data: bytes, *, page_id: int | None = None,
                     offset: int | None = None) -> Page | RowPage:
    """Decode the output of :func:`serialize_page`.

    Verifies the CRC envelope when present (bare legacy images decode
    unverified). *page_id*/*offset* are diagnostic context attached to
    :class:`~repro.errors.CorruptPageError`.
    """
    if data[:len(_ENVELOPE_MAGIC)] == _ENVELOPE_MAGIC:
        if len(data) < _ENVELOPE.size:
            raise CorruptPageError("page image truncated inside envelope",
                                   page_id=page_id, offset=offset)
        _, crc = _ENVELOPE.unpack_from(data)
        body = data[_ENVELOPE.size:]
        if zlib.crc32(body) != crc:
            raise CorruptPageError(
                "page image checksum mismatch (page %s, offset %s)"
                % (page_id, offset), page_id=page_id, offset=offset)
    else:
        body = data
    try:
        return _deserialize_body(body)
    except SerializationError:
        raise
    except Exception as exc:
        raise CorruptPageError(
            "undecodable page image (page %s, offset %s): %s"
            % (page_id, offset, exc), page_id=page_id, offset=offset
        ) from exc


def _deserialize_body(data: bytes) -> Page | RowPage:
    if len(data) < _HEADER.size:
        raise SerializationError("page image truncated")
    (magic, fmt, kind_code, page_id, capacity, column, tps_rid,
     merge_count, num_records) = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise SerializationError("bad page magic %r" % magic)
    kind = _KIND_FROM_CODE.get(kind_code)
    if kind is None:
        raise SerializationError("unknown page kind code %d" % kind_code)
    payload = data[_HEADER.size:]
    if fmt == _FORMAT_ROW_PICKLE:
        rows = pickle.loads(payload)
        page = RowPage(page_id, kind, capacity,
                       width=len(next((r for r in rows if r is not None),
                                      (None,))))
        for slot, row in enumerate(rows):
            if row is not None:
                page.write_row(slot, row)
        page.set_lineage(tps_rid, merge_count)
        if kind in (PageKind.BASE, PageKind.MERGED):
            page.freeze()
        return page
    if fmt == _FORMAT_BYTES:
        raw_len = 8 * num_records
        bitmap_len = (num_records + 7) >> 3
        if len(payload) < raw_len + bitmap_len:
            raise SerializationError("page payload truncated")
        sidecar = pickle.loads(payload[raw_len + bitmap_len:])
        page = BytesPage(page_id, kind, capacity,
                         None if column < 0 else column)
        page.install_dense(payload[:raw_len], num_records,
                           payload[raw_len:raw_len + bitmap_len], sidecar)
        page.set_lineage(tps_rid, merge_count)
        if kind in (PageKind.BASE, PageKind.MERGED):
            page.freeze()
        return page
    if fmt == _FORMAT_SPARSE:
        pairs = pickle.loads(payload)
        page = Page(page_id, kind, capacity,
                    None if column < 0 else column)
        for slot, value in pairs:
            page.write_slot(slot, value)
        page.set_lineage(tps_rid, merge_count)
        if kind in (PageKind.BASE, PageKind.MERGED):
            page.freeze()
        return page
    if fmt == _FORMAT_INT64:
        if len(payload) < 8 * num_records:
            raise SerializationError("page payload truncated")
        raw = struct.unpack("<%dq" % num_records,
                            payload[:8 * num_records])
        values = [NULL if v == _NULL_SENTINEL else v for v in raw]
    elif fmt == _FORMAT_PICKLE:
        values = pickle.loads(payload)
    else:
        raise SerializationError("unknown page format %d" % fmt)
    page = Page(page_id, kind, capacity,
                None if column < 0 else column)
    for slot, value in enumerate(values):
        page.write_slot(slot, value)
    page.set_lineage(tps_rid, merge_count)
    if kind in (PageKind.BASE, PageKind.MERGED):
        page.freeze()
    return page
