"""Page serialization: columnar pages ⇄ bytes.

The paper persists base and tail pages "identically" through the page
directory; this module provides that on-disk image. All-integer pages
(the common case for the micro-benchmark schema) take a packed struct
fast path; mixed pages (∅ cells, arbitrary Python values) fall back to
pickle. The special null ∅ is preserved across round trips.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any

from ..core.page import Page, RowPage
from ..core.types import NULL, PageKind, is_null
from ..errors import SerializationError

_MAGIC = b"LSPG"
_HEADER = struct.Struct("<4sBBqiiqqi")
# magic, format, kind, page_id, capacity, column(+1, 0=None),
# tps_rid, merge_count, num_records

_FORMAT_INT64 = 1
_FORMAT_PICKLE = 2
_FORMAT_ROW_PICKLE = 3

_KIND_CODES = {kind: code for code, kind in enumerate(PageKind)}
_KIND_FROM_CODE = {code: kind for kind, code in _KIND_CODES.items()}

#: Sentinel used inside the int64 fast path for the special null ∅.
_NULL_SENTINEL = -(1 << 62) + 7


def serialize_page(page: Page | RowPage) -> bytes:
    """Encode *page* (and its lineage) into a byte string."""
    if isinstance(page, RowPage):
        rows = [page.read_row(slot) if page.is_written(slot) else None
                for slot in range(page.capacity)]
        payload = pickle.dumps(rows, protocol=pickle.HIGHEST_PROTOCOL)
        fmt = _FORMAT_ROW_PICKLE
        column = -1
    else:
        values = list(page.iter_values())
        fmt = _FORMAT_INT64
        for value in values:
            if type(value) is not int and not is_null(value):
                fmt = _FORMAT_PICKLE
                break
            if type(value) is int and not (-(1 << 62) < value < (1 << 63)):
                fmt = _FORMAT_PICKLE
                break
        if fmt == _FORMAT_INT64:
            packed = struct.pack(
                "<%dq" % len(values),
                *(_NULL_SENTINEL if is_null(v) else v for v in values))
            payload = packed
        else:
            payload = pickle.dumps(values,
                                   protocol=pickle.HIGHEST_PROTOCOL)
        column = -1 if page.column is None else page.column
    header = _HEADER.pack(
        _MAGIC, fmt, _KIND_CODES[page.kind], page.page_id, page.capacity,
        column, page.tps_rid, page.merge_count, page.num_records)
    return header + payload


def deserialize_page(data: bytes) -> Page | RowPage:
    """Decode the output of :func:`serialize_page`."""
    if len(data) < _HEADER.size:
        raise SerializationError("page image truncated")
    (magic, fmt, kind_code, page_id, capacity, column, tps_rid,
     merge_count, num_records) = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise SerializationError("bad page magic %r" % magic)
    kind = _KIND_FROM_CODE.get(kind_code)
    if kind is None:
        raise SerializationError("unknown page kind code %d" % kind_code)
    payload = data[_HEADER.size:]
    if fmt == _FORMAT_ROW_PICKLE:
        rows = pickle.loads(payload)
        page = RowPage(page_id, kind, capacity,
                       width=len(next((r for r in rows if r is not None),
                                      (None,))))
        for slot, row in enumerate(rows):
            if row is not None:
                page.write_row(slot, row)
        page.set_lineage(tps_rid, merge_count)
        if kind in (PageKind.BASE, PageKind.MERGED):
            page.freeze()
        return page
    if fmt == _FORMAT_INT64:
        raw = struct.unpack("<%dq" % num_records,
                            payload[:8 * num_records])
        values = [NULL if v == _NULL_SENTINEL else v for v in raw]
    elif fmt == _FORMAT_PICKLE:
        values = pickle.loads(payload)
    else:
        raise SerializationError("unknown page format %d" % fmt)
    page = Page(page_id, kind, capacity,
                None if column < 0 else column)
    for slot, value in enumerate(values):
        page.write_slot(slot, value)
    page.set_lineage(tps_rid, merge_count)
    if kind in (PageKind.BASE, PageKind.MERGED):
        page.freeze()
    return page
