"""Page-file manager: variable-length page slots with a sidecar index.

One data file per table holds serialized pages appended back to back; a
sidecar index file maps page id → (offset, length). Page rewrites append
a new image and re-point the index (pages are read-only or append-only
in L-Store, so stale images are garbage until :meth:`compact`). The
index is rewritten atomically on :meth:`sync` (write temp → fsync →
rename → fsync directory), so a crash leaves either the old index or
the new one, never a torn one. Reads verify the image's CRC envelope
and raise :class:`~repro.errors.CorruptPageError` with the page id and
file offset on truncation or corruption.

For byte-buffer pages (the default layout) the slot body is the page's
raw ``array('q')`` buffer prefix plus its null bitmap — the disk image
is the in-memory buffer, checksummed verbatim, and loading a page is
one buffer splice rather than a slot-by-slot rebuild (see
:mod:`repro.storage.serialization`).
"""

from __future__ import annotations

import os
import pickle
import threading
from typing import Iterator

from ..core.page import Page, RowPage
from ..obs.registry import CounterStat, MetricsRegistry
from ..errors import CorruptPageError, StorageError
from ..fault import hit as fault_hit
from ..fault import wrap_file
from .serialization import deserialize_page, serialize_page


def _fsync_dir(path: str) -> None:
    """Fsync the directory containing *path* (rename durability)."""
    directory = os.path.dirname(path) or "."
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class PageFile:
    """On-disk store of serialized pages for one table."""

    def __init__(self, path: str,
                 metrics: MetricsRegistry | None = None) -> None:
        self.path = path
        self.index_path = path + ".idx"
        self._lock = threading.Lock()
        self._index: dict[int, tuple[int, int]] = {}
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        mode = "r+b" if os.path.exists(path) else "w+b"
        self._file = wrap_file(open(path, mode), "pagefile")
        if os.path.exists(self.index_path):
            with open(self.index_path, "rb") as handle:
                self._index = pickle.load(handle)
        if metrics is None:
            metrics = MetricsRegistry()
        self._stat_writes = metrics.counter(
            "storage.page_writes", help="Page images appended to disk")
        self._stat_reads = metrics.counter(
            "storage.page_reads", help="Page images read from disk")

    # -- statistics (registry-backed aliases) --------------------------

    stat_writes = CounterStat(
        "_stat_writes", "Page images appended to disk.")
    stat_reads = CounterStat(
        "_stat_reads", "Page images read from disk.")

    # -- IO ------------------------------------------------------------

    def write_page(self, page: Page | RowPage) -> None:
        """Persist *page* (appends a fresh image, re-points the index)."""
        image = serialize_page(page)
        with self._lock:
            fault_hit("pagefile.before_write")
            self._file.seek(0, os.SEEK_END)
            offset = self._file.tell()
            self._file.write(image)
            self._index[page.page_id] = (offset, len(image))
            self._stat_writes.add()

    def read_page(self, page_id: int) -> Page | RowPage:
        """Load the page stored under *page_id*.

        Raises :class:`~repro.errors.CorruptPageError` (with page id and
        offset) when the stored image is short, truncated, or fails its
        checksum.
        """
        with self._lock:
            entry = self._index.get(page_id)
            if entry is None:
                raise StorageError("page %d not on disk" % page_id)
            offset, length = entry
            self._file.seek(offset)
            image = self._file.read(length)
            self._stat_reads.add()
        if len(image) < length:
            raise CorruptPageError(
                "page %d truncated on disk: %d of %d bytes at offset %d"
                % (page_id, len(image), length, offset),
                page_id=page_id, offset=offset)
        return deserialize_page(image, page_id=page_id, offset=offset)

    def delete_page(self, page_id: int) -> None:
        """Drop *page_id* from the index (space reclaimed by compact)."""
        with self._lock:
            self._index.pop(page_id, None)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._index

    def page_ids(self) -> Iterator[int]:
        """Iterate the page ids currently stored."""
        with self._lock:
            return iter(list(self._index.keys()))

    def __len__(self) -> int:
        return len(self._index)

    # -- durability ------------------------------------------------------------

    def sync(self) -> None:
        """Flush data and rewrite the sidecar index atomically.

        Order matters for crash safety: data fsync first (so every
        offset the new index names is durable), then temp-write + fsync
        + rename + directory fsync for the index.
        """
        with self._lock:
            self._file.flush()
            fault_hit("pagefile.before_sync")
            os.fsync(self._file.fileno())
            tmp_path = self.index_path + ".tmp"
            with open(tmp_path, "wb") as handle:
                pickle.dump(self._index, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            fault_hit("pagefile.before_index_replace")
            os.replace(tmp_path, self.index_path)
            _fsync_dir(self.index_path)

    def compact(self) -> int:
        """Rewrite the data file dropping stale images; return bytes saved."""
        with self._lock:
            old_size = os.path.getsize(self.path)
            entries = sorted(self._index.items(), key=lambda kv: kv[1][0])
            tmp_path = self.path + ".tmp"
            new_index: dict[int, tuple[int, int]] = {}
            with open(tmp_path, "wb") as out:
                for page_id, (offset, length) in entries:
                    self._file.seek(offset)
                    image = self._file.read(length)
                    new_index[page_id] = (out.tell(), length)
                    out.write(image)
                out.flush()
                os.fsync(out.fileno())
            self._file.close()
            os.replace(tmp_path, self.path)
            _fsync_dir(self.path)
            self._file = wrap_file(open(self.path, "r+b"), "pagefile")
            self._index = new_index
        self.sync()
        return old_size - os.path.getsize(self.path)

    def close(self, sync: bool = True) -> None:
        """Sync (unless ``sync=False``) and close."""
        if sync:
            self.sync()
        with self._lock:
            if not self._file.closed:
                self._file.close()
