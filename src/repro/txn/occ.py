"""The optimistic concurrency protocol of Section 5.1.1.

Free functions implementing the five operations the paper formalises —
``read``, ``speculative-read``, ``write``, ``validate reads`` and
``commit`` — against the storage primitives of
:class:`~repro.core.table.Table`. :class:`~repro.txn.transaction.Transaction`
is the stateful wrapper users see; these functions are the protocol
itself, kept separate so they can be tested and reasoned about in
isolation.

The write path is verbatim from the paper: (1) CAS the latch bit of the
base record's indirection word — failure is a write-write conflict;
(2) with the latch held, check whether the latest version's start time
holds a competing uncommitted transaction id — if so, release and
abort; (3) append the new tail record, install its RID in the
indirection word, release the latch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from ..core.table import DELETED, Table
from ..core.types import IsolationLevel, make_txn_marker
from ..core.version import (VisibilityPredicate, visible_as_of,
                            visible_latest_committed, visible_speculative,
                            visible_to_txn)
from ..errors import ValidationFailure


@dataclass(frozen=True)
class ReadEntry:
    """One readset entry: which version RID the transaction observed."""

    table: Table
    rid: int
    observed_version: int | None
    speculative: bool = False


@dataclass(frozen=True)
class WriteEntry:
    """One writeset entry: the tail record a transaction appended."""

    table: Table
    rid: int
    tail_rid: int
    is_delete: bool = False
    #: The located update range (post-commit merge nudge, no re-locate).
    update_range: Any = None


@dataclass(frozen=True)
class InsertEntry:
    """One inserted record (rolled back via tombstone on abort)."""

    table: Table
    rid: int
    key: Any


@dataclass(slots=True)
class TxnContext:
    """Mutable OCC state of one transaction."""

    txn_id: int
    begin_time: int
    isolation: IsolationLevel
    readset: list[ReadEntry] = field(default_factory=list)
    writeset: list[WriteEntry] = field(default_factory=list)
    insertset: list[InsertEntry] = field(default_factory=list)
    _predicate_cache: dict[bool, VisibilityPredicate] = field(
        default_factory=dict, repr=False)

    @property
    def needs_validation(self) -> bool:
        """Repeatable read / serializable validate the whole readset;
        snapshot isolation validates only speculative reads."""
        readset = self.readset
        if not readset:
            return False
        if self.isolation in (IsolationLevel.REPEATABLE_READ,
                              IsolationLevel.SERIALIZABLE):
            return True
        return any(entry.speculative for entry in readset)

    def base_predicate(self) -> VisibilityPredicate:
        """Statement visibility for this isolation level."""
        if self.isolation is IsolationLevel.READ_COMMITTED:
            return visible_latest_committed
        # Reads settle the pre-commit window (a txn that already owns
        # a commit time <= begin_time must not tear the snapshot);
        # validation below uses the plain, never-waiting predicate.
        return visible_as_of(self.begin_time, settle_precommit=True)

    def read_predicate(self, speculative: bool = False,
                       ) -> VisibilityPredicate:
        """Visibility including the transaction's own writes (cached)."""
        predicate = self._predicate_cache.get(speculative)
        if predicate is None:
            predicate = visible_to_txn(self.txn_id, self.base_predicate())
            if speculative:
                predicate = visible_speculative(predicate)
            self._predicate_cache[speculative] = predicate
        return predicate


# ---------------------------------------------------------------------------
# Protocol operations
# ---------------------------------------------------------------------------

def occ_read(ctx: TxnContext, table: Table, rid: int,
             data_columns: Sequence[int] | None = None, *,
             speculative: bool = False) -> dict[int, Any] | None:
    """``read r(x)`` / ``speculative-read r(x)``.

    Returns the visible version's columns, None when the record is
    invisible, and records the observed version RID in the readset when
    the isolation level will validate it.
    """
    track = speculative or ctx.isolation in (
        IsolationLevel.REPEATABLE_READ, IsolationLevel.SERIALIZABLE)
    if not track and ctx.isolation is IsolationLevel.READ_COMMITTED:
        # Allocation-lean 2-hop path for the common statement read.
        values = table.read_latest_fast(rid, data_columns, ctx.txn_id)
        return None if values is DELETED else values
    predicate = ctx.read_predicate(speculative)
    if not track:
        values = table.read_latest(rid, data_columns, predicate)
        return None if values is DELETED else values
    # Tracked read: the observed version RID and the returned values
    # must describe the SAME version, or validation can certify a stale
    # read. A competing transaction whose commit time precedes this
    # snapshot may flip PRE_COMMIT -> COMMITTED between two chain
    # walks, making its version newly visible; the version-stamped
    # single-walk read resolves every record's visibility exactly once,
    # so the (version, values) pair is atomic by construction.
    observed, values = table.read_versioned(rid, data_columns, predicate)
    ctx.readset.append(ReadEntry(table, rid, observed, speculative))
    return None if values is DELETED else values


def occ_write(ctx: TxnContext, table: Table, rid: int,
              updates: dict[int, Any], *, is_delete: bool = False) -> int:
    """``write w(x)``: latch-bit CAS, conflict check, append, install.

    The first three steps run fused inside
    :meth:`~repro.core.table.Table.occ_append` (one locate, one chain
    pass shared between the conflict check and the cumulation source);
    the indirection install stays separate so an abort between append
    and install leaves the chain untouched, exactly as before.
    """
    tail_rid, update_range, offset = table.occ_append(
        rid, updates, make_txn_marker(ctx.txn_id), ctx.txn_id,
        is_delete=is_delete)
    table.install_indirection_located(update_range, offset, rid,
                                      tail_rid)  # releases the latch
    ctx.writeset.append(WriteEntry(table, rid, tail_rid, is_delete,
                                   update_range))
    return tail_rid


def occ_insert(ctx: TxnContext, table: Table,
               values: Sequence[Any]) -> int:
    """Transactional insert: marker start cell, rollback via tombstone."""
    rid = table.insert(values, start_cell=make_txn_marker(ctx.txn_id))
    key = values[table.schema.key_index]
    ctx.insertset.append(InsertEntry(table, rid, key))
    return rid


def occ_validate(ctx: TxnContext, commit_time: int) -> None:
    """``validate reads``: re-resolve every observed version at commit time.

    Raises :class:`~repro.errors.ValidationFailure` when any read is no
    longer current — "if the currently committed and visible RID based
    on the commit time ... is equal to the [observed one] then the
    validation is satisfied; otherwise ... the transaction is aborted".
    """
    if ctx.isolation in (IsolationLevel.READ_COMMITTED,):
        entries = [entry for entry in ctx.readset if entry.speculative]
    elif ctx.isolation is IsolationLevel.SNAPSHOT:
        entries = [entry for entry in ctx.readset if entry.speculative]
    else:
        entries = ctx.readset
    for entry in entries:
        predicate = visible_as_of(commit_time)
        if entry.speculative:
            predicate = visible_speculative(predicate)
        current = entry.table.visible_version_rid(entry.rid, predicate)
        if current != entry.observed_version:
            raise ValidationFailure(
                "txn %d: record %d changed (observed %r, now %r)"
                % (ctx.txn_id, entry.rid, entry.observed_version, current))


def occ_rollback(ctx: TxnContext) -> None:
    """Undo by tombstoning: appended tails are never physically removed.

    "Aborted transactions do not physically remove the aborted tail
    records as they are only marked as tombstones" (Section 5.1.3).
    Indirection words keep pointing at tombstones — readers skip them.
    """
    for entry in reversed(ctx.writeset):
        entry.table.mark_tail_tombstone(entry.rid, entry.tail_rid)
    for entry in reversed(ctx.insertset):
        entry.table.mark_insert_tombstone(entry.rid)
        entry.table.remove_key_mapping(entry.key, entry.rid)


def occ_post_commit(ctx: TxnContext) -> None:
    """After commit: nudge the merge scheduler for the touched ranges."""
    for entry in ctx.writeset:
        if entry.update_range is not None:
            entry.table._maybe_notify_merge_located(entry.update_range)
        else:
            entry.table._maybe_notify_merge(entry.rid)
