"""Synchronised logical clock and transaction-id source (Section 5.1.1).

"When a transaction starts, it receives a begin time from a synchronized
clock (time is advanced before it is returned) and is assigned a unique
monotonically increasing transaction ID." Begin and commit times come
from the same clock, so the total order over timestamps is exactly the
order the clock handed them out in.

Timestamps are plain ints; transaction ids are drawn from the same clock
(the paper notes the begin time can seed the transaction id) and are
stored in Start Time cells with the ``TXN_ID_FLAG`` marker
(:mod:`repro.core.types`).
"""

from __future__ import annotations

import threading


class SynchronizedClock:
    """Monotone logical clock shared by all transactions of a database."""

    def __init__(self, start: int = 0) -> None:
        self._now = start
        self._lock = threading.Lock()

    def advance(self) -> int:
        """Advance the clock and return the new time.

        This is the paper's "time is advanced before it is returned":
        two calls never return the same value, and the values order
        exactly like the calls.
        """
        with self._lock:
            self._now += 1
            return self._now

    def now(self) -> int:
        """Peek at the current time without advancing.

        Lock-free: the int read is atomic under the GIL, and every
        consumer of ``now()`` (version-horizon lower bounds, epoch
        registration) only needs a value *not exceeding* the next
        timestamp :meth:`advance` will hand out — a slightly stale
        reading is conservative, so the write hot path no longer
        serialises on the clock mutex just to peek.
        """
        return self._now

    def advance_to(self, value: int) -> None:
        """Raise the clock to *value* (recovery restores the clock)."""
        with self._lock:
            if value > self._now:
                self._now = value


class TransactionIdSource:
    """Unique, monotonically increasing transaction ids."""

    def __init__(self, clock: SynchronizedClock) -> None:
        self._clock = clock

    def next_id(self) -> int:
        """Return a fresh transaction id (also usable as the begin seed)."""
        return self._clock.advance()
