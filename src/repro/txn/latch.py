"""Low-level synchronisation primitives (Section 5.1.2).

The paper's protocol relies on three hardware-ish primitives that we
emulate faithfully in Python:

* an atomic **compare-and-swap** cell (:class:`AtomicCell`) — one winner,
  losers observe failure and retry or abort;
* the **indirection latch bit**: bit 63 of the 8-byte indirection value
  doubles as a write latch, set by CAS during write-write conflict
  detection (:class:`IndirectionVector`);
* **shared/exclusive latches** with conditional promotion, used by the
  In-place Update + History baseline for its page latches and by the
  Ownership Relaying WAL protocol (:class:`SharedExclusiveLatch`).

Lock striping keeps the per-slot CAS emulation cheap for ranges with
tens of thousands of records.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from ..core.types import LATCH_BIT, NULL_RID


class AtomicCell:
    """A single mutable cell with get / set / compare-and-swap."""

    __slots__ = ("_value", "_lock")

    def __init__(self, value: Any = None) -> None:
        self._value = value
        self._lock = threading.Lock()

    def get(self) -> Any:
        """Return the current value."""
        return self._value

    def set(self, value: Any) -> None:
        """Unconditionally store *value*."""
        with self._lock:
            self._value = value

    def compare_and_swap(self, expected: Any, new: Any) -> bool:
        """Atomically set *new* iff the cell equals *expected*."""
        with self._lock:
            if self._value == expected:
                self._value = new
                return True
            return False

    def update(self, fn: Callable[[Any], Any]) -> Any:
        """Atomically apply *fn* to the value; return the new value."""
        with self._lock:
            self._value = fn(self._value)
            return self._value


class StripedCounter:
    """A statistics counter striped per thread: no lock on the hot path.

    ``add`` locates (or lazily creates) the calling thread's private
    cell and increments it — only that thread ever writes the cell, so
    the increment needs no mutex and can never be lost. ``value`` folds
    every cell on read. The fold is *eventually exact*: a read racing
    in-flight increments may miss the very newest ones, but once the
    writing threads quiesce (or join), the fold equals the true total —
    exactly the guarantee benchmark/observability counters need, and it
    removes the per-operation global lock that serialises writer
    threads on the shared counters (the PR-4 profile's
    ``Table._stat_lock`` convoy).
    """

    __slots__ = ("_cells", "_base", "_lock")

    def __init__(self, value: int = 0) -> None:
        #: thread id -> single-element list (the thread's private cell).
        self._cells: dict[int, list[int]] = {}
        self._base = value
        self._lock = threading.Lock()

    def add(self, delta: int = 1) -> None:
        """Add *delta* from the calling thread (lock-free steady state)."""
        cell = self._cells.get(threading.get_ident())
        if cell is None:
            with self._lock:
                cell = self._cells.setdefault(threading.get_ident(), [0])
        cell[0] += delta

    @property
    def value(self) -> int:
        """Fold of all cells (exact once writers quiesce)."""
        return self._base + sum(cell[0] for cell in
                                list(self._cells.values()))

    def set(self, value: int) -> None:
        """Reset the counter to an absolute *value* (recovery/tests)."""
        with self._lock:
            self._cells = {}
            self._base = value


class AtomicCounter:
    """Thread-safe integer counter with add/increment."""

    __slots__ = ("_value", "_lock")

    def __init__(self, value: int = 0) -> None:
        self._value = value
        self._lock = threading.Lock()

    def increment(self, delta: int = 1) -> int:
        """Add *delta*; return the new value."""
        with self._lock:
            self._value += delta
            return self._value

    def get(self) -> int:
        """Return the current value."""
        return self._value

    def max_update(self, candidate: int) -> bool:
        """Monotonically raise the counter to *candidate* if larger."""
        with self._lock:
            if candidate > self._value:
                self._value = candidate
                return True
            return False


class IndirectionVector:
    """The in-place-updated Indirection column of one update range.

    Stores one 64-bit word per base record: the forward pointer (tail
    RID of the latest version, or ``NULL_RID`` ⊥) with bit 63 reserved
    as the write latch. All mutation is CAS-based; readers never latch
    (Section 5.1.2: "readers do not have to latch ... writers can simply
    rely on atomic compare-and-swap").

    Lock striping (``_STRIPES`` mutexes) emulates word-level CAS without
    one mutex per record.
    """

    _STRIPES = 64

    def __init__(self, size: int) -> None:
        self._words = [NULL_RID] * size
        self._locks = [threading.Lock() for _ in range(self._STRIPES)]

    def _lock_for(self, slot: int) -> threading.Lock:
        return self._locks[slot % self._STRIPES]

    def __len__(self) -> int:
        return len(self._words)

    # -- reads (latch-free) -------------------------------------------------

    def read(self, slot: int) -> int:
        """Return the indirection RID at *slot*, masking the latch bit."""
        return self._words[slot] & ~LATCH_BIT

    def is_latched(self, slot: int) -> bool:
        """True when the latch bit of *slot* is currently set."""
        return bool(self._words[slot] & LATCH_BIT)

    # -- writes (CAS emulation) ----------------------------------------------

    def try_latch(self, slot: int) -> bool:
        """Set the latch bit by CAS; False signals a write-write conflict.

        First step of the paper's write protocol: "the latch bit of the
        indirection value is set using atomic compare-and-swap. If
        setting the latch bit fails, then it is an indicator of
        write-write conflict, and the transaction aborts."
        """
        with self._lock_for(slot):
            word = self._words[slot]
            if word & LATCH_BIT:
                return False
            self._words[slot] = word | LATCH_BIT
            return True

    def unlatch(self, slot: int) -> None:
        """Clear the latch bit."""
        with self._lock_for(slot):
            self._words[slot] &= ~LATCH_BIT

    def set_and_unlatch(self, slot: int, rid: int) -> None:
        """Install a new forward pointer and release the latch."""
        if rid & LATCH_BIT:
            raise ValueError("rid collides with the latch bit")
        with self._lock_for(slot):
            self._words[slot] = rid

    def set(self, slot: int, rid: int) -> None:
        """Install a forward pointer without touching the latch bit.

        Used by recovery and by single-threaded fast paths where the
        latch protocol is not needed.
        """
        if rid & LATCH_BIT:
            raise ValueError("rid collides with the latch bit")
        with self._lock_for(slot):
            latch = self._words[slot] & LATCH_BIT
            self._words[slot] = rid | latch

    def compare_and_swap(self, slot: int, expected: int, new: int) -> bool:
        """Raw CAS on the full word (latch bit included)."""
        with self._lock_for(slot):
            if self._words[slot] == expected:
                self._words[slot] = new
                return True
            return False

    def snapshot(self) -> list[int]:
        """Copy of all forward pointers (latch bits masked)."""
        return [word & ~LATCH_BIT for word in self._words]


class SharedExclusiveLatch:
    """A reader-writer latch with conditional shared→exclusive promotion.

    Writer-preferring to avoid writer starvation. ``promote()`` upgrades
    one shared holder to exclusive once it is the only holder left —
    exactly the promotion step of the Ownership Relaying protocol
    (Section 5.2) — and fails (returns False) when a second holder also
    requests promotion (deadlock avoidance).
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._shared = 0
        self._exclusive = False
        self._writers_waiting = 0
        self._promoting = False

    # -- shared -------------------------------------------------------------

    def acquire_shared(self, timeout: float | None = None) -> bool:
        """Acquire in shared mode."""
        with self._cond:
            ok = self._cond.wait_for(
                lambda: not self._exclusive and not self._writers_waiting,
                timeout)
            if not ok:
                return False
            self._shared += 1
            return True

    def release_shared(self) -> None:
        """Release one shared hold."""
        with self._cond:
            if self._shared <= 0:
                raise RuntimeError("release_shared without hold")
            self._shared -= 1
            self._cond.notify_all()

    # -- exclusive ------------------------------------------------------------

    def acquire_exclusive(self, timeout: float | None = None) -> bool:
        """Acquire in exclusive mode."""
        with self._cond:
            self._writers_waiting += 1
            try:
                ok = self._cond.wait_for(
                    lambda: not self._exclusive and self._shared == 0
                    and not self._promoting,
                    timeout)
                if not ok:
                    return False
                self._exclusive = True
                return True
            finally:
                self._writers_waiting -= 1

    def release_exclusive(self) -> None:
        """Release the exclusive hold."""
        with self._cond:
            if not self._exclusive:
                raise RuntimeError("release_exclusive without hold")
            self._exclusive = False
            self._cond.notify_all()

    # -- promotion ------------------------------------------------------------

    def promote(self, timeout: float | None = None) -> bool:
        """Upgrade the caller's shared hold to exclusive.

        Returns False if another holder is already promoting (the caller
        keeps its shared hold) or on timeout.
        """
        with self._cond:
            if self._shared <= 0:
                raise RuntimeError("promote without a shared hold")
            if self._promoting:
                return False
            self._promoting = True
            try:
                ok = self._cond.wait_for(lambda: self._shared == 1, timeout)
                if not ok:
                    return False
                self._shared = 0
                self._exclusive = True
                return True
            finally:
                self._promoting = False
                self._cond.notify_all()

    def demote(self) -> None:
        """Downgrade exclusive back to shared."""
        with self._cond:
            if not self._exclusive:
                raise RuntimeError("demote without exclusive hold")
            self._exclusive = False
            self._shared = 1
            self._cond.notify_all()

    # -- context helpers ---------------------------------------------------------

    class _SharedGuard:
        def __init__(self, latch: "SharedExclusiveLatch") -> None:
            self._latch = latch

        def __enter__(self) -> "SharedExclusiveLatch":
            self._latch.acquire_shared()
            return self._latch

        def __exit__(self, *exc: object) -> None:
            self._latch.release_shared()

    class _ExclusiveGuard:
        def __init__(self, latch: "SharedExclusiveLatch") -> None:
            self._latch = latch

        def __enter__(self) -> "SharedExclusiveLatch":
            self._latch.acquire_exclusive()
            return self._latch

        def __exit__(self, *exc: object) -> None:
            self._latch.release_exclusive()

    def shared(self) -> "_SharedGuard":
        """``with latch.shared():`` context manager."""
        return self._SharedGuard(self)

    def exclusive(self) -> "_ExclusiveGuard":
        """``with latch.exclusive():`` context manager."""
        return self._ExclusiveGuard(self)
