"""Transaction manager: states, begin/commit times (Section 5.1.1).

"The transaction manager also maintains the state of each transaction
and its begin/commit time in a hashtable. Each transaction has four
states: active, pre-commit, committed, and aborted."

The manager implements the :class:`~repro.core.version.TxnStateSource`
protocol, so Start Time cells holding transaction markers resolve
against it lazily — the paper's deferred txn-id→commit-time swap.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..core.types import TransactionState
from ..errors import IllegalTransactionState
from .clock import SynchronizedClock


@dataclass
class TxnEntry:
    """One row of the transaction manager's hashtable."""

    txn_id: int
    state: TransactionState
    begin_time: int
    commit_time: int | None = None


class TransactionManager:
    """Hashtable of transaction states keyed by transaction id."""

    def __init__(self, clock: SynchronizedClock | None = None) -> None:
        self.clock = clock if clock is not None else SynchronizedClock()
        self._entries: dict[int, TxnEntry] = {}
        self._lock = threading.Lock()
        self.stat_begun = 0
        self.stat_committed = 0
        self.stat_aborted = 0
        #: Optional WAL sinks: called as sink(txn_id, commit_time) /
        #: sink(txn_id) after the state transition (group commit point).
        self.commit_sink = None
        self.abort_sink = None

    # -- lifecycle ----------------------------------------------------------

    def begin(self) -> TxnEntry:
        """Start a transaction: fresh id + begin time from the clock.

        The begin time doubles as the seed of the transaction id (the
        paper permits exactly this), keeping both monotone.
        """
        begin_time = self.clock.advance()
        entry = TxnEntry(txn_id=begin_time, state=TransactionState.ACTIVE,
                         begin_time=begin_time)
        with self._lock:
            self._entries[entry.txn_id] = entry
            self.stat_begun += 1
        return entry

    def enter_precommit(self, txn_id: int) -> int:
        """Move ACTIVE → PRE_COMMIT and assign the commit time.

        "A commit timestamp is acquired for the transaction and the
        transaction state is changed from active to pre-commit; both
        changes are reflected atomically in the transaction manager's
        hashtable."
        """
        with self._lock:
            entry = self._require(txn_id)
            if entry.state is not TransactionState.ACTIVE:
                raise IllegalTransactionState(
                    "txn %d is %s, cannot enter pre-commit"
                    % (txn_id, entry.state.value))
            commit_time = self.clock.advance()
            entry.state = TransactionState.PRE_COMMIT
            entry.commit_time = commit_time
            return commit_time

    def commit(self, txn_id: int) -> int:
        """Move PRE_COMMIT → COMMITTED; return the commit time."""
        with self._lock:
            entry = self._require(txn_id)
            if entry.state is not TransactionState.PRE_COMMIT:
                raise IllegalTransactionState(
                    "txn %d is %s, cannot commit"
                    % (txn_id, entry.state.value))
            entry.state = TransactionState.COMMITTED
            self.stat_committed += 1
            assert entry.commit_time is not None
            commit_time = entry.commit_time
        if self.commit_sink is not None:
            self.commit_sink(txn_id, commit_time)
        return commit_time

    def abort(self, txn_id: int) -> None:
        """Move any live state → ABORTED."""
        with self._lock:
            entry = self._require(txn_id)
            if entry.state is TransactionState.COMMITTED:
                raise IllegalTransactionState(
                    "txn %d already committed" % txn_id)
            entry.state = TransactionState.ABORTED
            self.stat_aborted += 1
        if self.abort_sink is not None:
            self.abort_sink(txn_id)

    def _require(self, txn_id: int) -> TxnEntry:
        entry = self._entries.get(txn_id)
        if entry is None:
            raise IllegalTransactionState("unknown txn id %d" % txn_id)
        return entry

    # -- TxnStateSource protocol ------------------------------------------------

    def lookup(self, txn_id: int) -> tuple[TransactionState, int | None]:
        """Resolve a transaction marker (state, commit time).

        Lock-free: dict reads are atomic under the GIL, and the state
        machine guarantees the commit time is installed *before* the
        COMMITTED state becomes visible, so readers never observe a
        committed transaction without its commit time. Keeping this
        path mutex-free matters — every read of a marker cell lands
        here, and a shared lock would convoy reader threads.
        """
        entry = self._entries.get(txn_id)
        if entry is None:
            # Unknown id: a pre-crash transaction that never committed
            # (redo-only recovery tombstones its records).
            return TransactionState.ABORTED, None
        return entry.state, entry.commit_time

    # -- introspection ------------------------------------------------------------

    def state_of(self, txn_id: int) -> TransactionState:
        """Current state of *txn_id*."""
        with self._lock:
            return self._require(txn_id).state

    def entry(self, txn_id: int) -> TxnEntry:
        """Copy of the manager entry for *txn_id*."""
        with self._lock:
            source = self._require(txn_id)
            return TxnEntry(source.txn_id, source.state, source.begin_time,
                            source.commit_time)

    @property
    def active_count(self) -> int:
        """Transactions in ACTIVE or PRE_COMMIT state."""
        with self._lock:
            return sum(1 for entry in self._entries.values()
                       if entry.state in (TransactionState.ACTIVE,
                                          TransactionState.PRE_COMMIT))

    def gc(self, before: int) -> int:
        """Drop finished entries whose commit time precedes *before*.

        Safe only once every Start Time marker of those transactions has
        been lazily stamped or compressed away; exposed for long-running
        benchmark loops that would otherwise grow without bound.
        """
        with self._lock:
            doomed = [
                txn_id for txn_id, entry in self._entries.items()
                if entry.state is TransactionState.COMMITTED
                and entry.commit_time is not None
                and entry.commit_time < before
            ]
            for txn_id in doomed:
                del self._entries[txn_id]
            return len(doomed)
