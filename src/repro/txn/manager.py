"""Transaction manager: states, begin/commit times (Section 5.1.1).

"The transaction manager also maintains the state of each transaction
and its begin/commit time in a hashtable. Each transaction has four
states: active, pre-commit, committed, and aborted."

The manager implements the :class:`~repro.core.version.TxnStateSource`
protocol, so Start Time cells holding transaction markers resolve
against it lazily — the paper's deferred txn-id→commit-time swap.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from ..core.types import TransactionState
from ..analysis.locks import ENABLED as _LOCK_CHECK
from ..analysis.locks import guard_callback, make_lock
from ..errors import IllegalTransactionState
from ..obs.registry import CounterStat, MetricsRegistry
from .clock import SynchronizedClock


@dataclass(slots=True)
class TxnEntry:
    """One row of the transaction manager's hashtable."""

    txn_id: int
    state: TransactionState
    begin_time: int
    commit_time: int | None = None


class TransactionManager:
    """Hashtable of transaction states keyed by transaction id."""

    def __init__(self, clock: SynchronizedClock | None = None, *,
                 metrics: MetricsRegistry | None = None) -> None:
        self.clock = clock if clock is not None else SynchronizedClock()
        self._entries: dict[int, TxnEntry] = {}
        self._lock = make_lock("txn.manager")
        if metrics is None:
            metrics = MetricsRegistry()
        self.metrics = metrics
        self._stat_begun = metrics.counter(
            "txn.begins", help="Transactions begun")
        self._stat_committed = metrics.counter(
            "txn.commits", help="Transactions committed")
        self._stat_aborted = metrics.counter(
            "txn.aborts", help="Transactions aborted")
        self._stat_retries = metrics.counter(
            "txn.retries", help="Transaction retries after OCC conflicts")
        self._stat_validation_failures = metrics.counter(
            "txn.validation_failures",
            help="Commits aborted by OCC read-set validation")
        self._stat_deadline_aborts = metrics.counter(
            "txn.deadline_aborts",
            help="Transactions aborted past their deadline")
        self._stat_giveups = metrics.counter(
            "txn.giveups",
            help="Worker bodies abandoned after the retry budget "
                 "or deadline")
        #: Per-retry backoff waits of the transaction workers.
        self.retry_backoff_seconds = metrics.histogram(
            "txn.retry_backoff_seconds", unit="seconds",
            help="Jittered exponential backoff per OCC retry")
        #: Commit latency of Transaction.commit (both outcomes).
        self.commit_latency = metrics.histogram(
            "txn.commit_seconds", unit="seconds",
            help="Transaction.commit wall time")
        metrics.gauge("txn.active", lambda: self.active_count,
                      help="Transactions in ACTIVE or PRE_COMMIT state")
        #: Optional WAL sinks: called as sink(txn_id, commit_time) /
        #: sink(txn_id) after the state transition (group commit point).
        self.commit_sink = None
        self.abort_sink = None
        # Automatic entry GC (wired to the epoch manager's watermark).
        self._auto_gc_epoch: Any | None = None
        self._auto_gc_threshold = 0
        self._auto_gc_lock = threading.Lock()
        self._stamp_sources: list[Callable[[], int | None]] = []
        #: Pending candidate from the last sweep: (sweep_time, horizon).
        self._gc_candidate: tuple[int, int] | None = None
        #: Ids below this floor have been GC'd; see :meth:`lookup`.
        self._gc_floor = 0
        #: Earliest next auto-GC attempt, in ``stat_begun`` ticks.
        self._next_auto_gc_begun = 0
        self._stat_auto_gc_dropped = metrics.counter(
            "gc.entries_swept",
            help="Transaction-manager entries dropped by auto-GC")

    # -- statistics (registry-backed aliases) ------------------------------

    stat_begun = CounterStat("_stat_begun", "Transactions begun.")
    stat_committed = CounterStat("_stat_committed",
                                 "Transactions committed.")
    stat_aborted = CounterStat("_stat_aborted", "Transactions aborted.")
    stat_auto_gc_dropped = CounterStat(
        "_stat_auto_gc_dropped", "Entries dropped by auto-GC.")

    # -- lifecycle ----------------------------------------------------------

    def begin(self) -> TxnEntry:
        """Start a transaction: fresh id + begin time from the clock.

        The begin time doubles as the seed of the transaction id (the
        paper permits exactly this), keeping both monotone.
        """
        begin_time = self.clock.advance()
        entry = TxnEntry(txn_id=begin_time, state=TransactionState.ACTIVE,
                         begin_time=begin_time)
        with self._lock:
            self._entries[entry.txn_id] = entry
            self._stat_begun.add()
        if self._auto_gc_epoch is not None \
                and self._stat_begun.value >= self._next_auto_gc_begun and (
                self._gc_candidate is not None
                or len(self._entries) >= self._auto_gc_threshold):
            self._maybe_auto_gc()
        return entry

    def enter_precommit(self, txn_id: int) -> int:
        """Move ACTIVE → PRE_COMMIT and assign the commit time.

        "A commit timestamp is acquired for the transaction and the
        transaction state is changed from active to pre-commit; both
        changes are reflected atomically in the transaction manager's
        hashtable."

        Ordering matters for the lock-free :meth:`lookup`: the
        PRE_COMMIT state becomes visible *before* the commit time is
        drawn from the clock. A snapshot reader that still observes
        ACTIVE can then infer the eventual commit time will postdate
        every timestamp it already holds (its own begin time
        included), so treating the version as invisible is exact; a
        reader that observes PRE_COMMIT settles until the outcome is
        decided. Drawing the time first would open a window where a
        commit time older than a reader's snapshot hides behind an
        ACTIVE state — the reader would skip one leg of a transfer it
        is about to see the other leg of.
        """
        with self._lock:
            entry = self._require(txn_id)
            if entry.state is not TransactionState.ACTIVE:
                raise IllegalTransactionState(
                    "txn %d is %s, cannot enter pre-commit"
                    % (txn_id, entry.state.value))
            entry.state = TransactionState.PRE_COMMIT
            commit_time = self.clock.advance()
            entry.commit_time = commit_time
            return commit_time

    def commit(self, txn_id: int) -> int:
        """Move PRE_COMMIT → COMMITTED; return the commit time."""
        with self._lock:
            entry = self._require(txn_id)
            if entry.state is not TransactionState.PRE_COMMIT:
                raise IllegalTransactionState(
                    "txn %d is %s, cannot commit"
                    % (txn_id, entry.state.value))
            entry.state = TransactionState.COMMITTED
            self._stat_committed.add()
            assert entry.commit_time is not None
            commit_time = entry.commit_time
        if self.commit_sink is not None:
            if _LOCK_CHECK:
                guard_callback("commit_sink")
            self.commit_sink(txn_id, commit_time)
        return commit_time

    def commit_fast(self, txn_id: int) -> int:
        """ACTIVE → PRE_COMMIT → COMMITTED in one lock hold.

        The commit path for transactions with **nothing to validate**
        (empty readset under READ_COMMITTED, no speculative reads):
        :meth:`enter_precommit` + :meth:`commit` would take the manager
        lock twice and leave a PRE_COMMIT window that concurrent
        snapshot readers must settle (spin) on; fusing the transition
        halves the lock traffic on the OLTP hot path and shrinks the
        observable pre-commit window to the lock hold itself.

        The lock-free :meth:`lookup` ordering argument is preserved:
        the PRE_COMMIT state is written *before* the commit time is
        drawn from the clock, and the commit time is installed before
        the COMMITTED state, so a reader observing ACTIVE still proves
        the eventual commit time postdates every timestamp it holds,
        and a reader observing COMMITTED always sees the commit time.
        """
        with self._lock:
            entry = self._require(txn_id)
            if entry.state is not TransactionState.ACTIVE:
                raise IllegalTransactionState(
                    "txn %d is %s, cannot commit"
                    % (txn_id, entry.state.value))
            entry.state = TransactionState.PRE_COMMIT
            commit_time = self.clock.advance()
            entry.commit_time = commit_time
            entry.state = TransactionState.COMMITTED
            self._stat_committed.add()
        if self.commit_sink is not None:
            if _LOCK_CHECK:
                guard_callback("commit_sink")
            self.commit_sink(txn_id, commit_time)
        return commit_time

    def abort(self, txn_id: int) -> None:
        """Move any live state → ABORTED."""
        with self._lock:
            entry = self._require(txn_id)
            if entry.state is TransactionState.COMMITTED:
                raise IllegalTransactionState(
                    "txn %d already committed" % txn_id)
            entry.state = TransactionState.ABORTED
            self._stat_aborted.add()
        if self.abort_sink is not None:
            if _LOCK_CHECK:
                guard_callback("abort_sink")
            self.abort_sink(txn_id)

    def _require(self, txn_id: int) -> TxnEntry:
        entry = self._entries.get(txn_id)
        if entry is None:
            raise IllegalTransactionState("unknown txn id %d" % txn_id)
        return entry

    # -- TxnStateSource protocol ------------------------------------------------

    def lookup(self, txn_id: int) -> tuple[TransactionState, int | None]:
        """Resolve a transaction marker (state, commit time).

        Lock-free: dict reads are atomic under the GIL, and the state
        machine guarantees the commit time is installed *before* the
        COMMITTED state becomes visible, so readers never observe a
        committed transaction without its commit time. Keeping this
        path mutex-free matters — every read of a marker cell lands
        here, and a shared lock would convoy reader threads.

        Unknown ids **below the GC floor** resolve as committed at
        their begin time: the auto-GC sweep stamps every reachable
        marker of those transactions before their entries drop, so the
        only readers that still ask are ones holding a pre-stamp copy
        of a cell — and for them the aborted fallback would turn a
        committed version invisible (a stale read OCC validation could
        then certify). Aborted transactions stay safe under this rule
        because their records are tombstoned, and every read path
        checks the tombstone before resolving the Start Time cell. The
        begin time is a lower bound of the real commit time; both lie
        below every horizon the floor was advanced to, so visibility
        predicates evaluated by live readers agree either way.

        Unknown ids above the floor keep the aborted fallback: a
        pre-crash transaction that never committed (redo-only recovery
        tombstones its records).
        """
        entry = self._entries.get(txn_id)
        if entry is None:
            if txn_id < self._gc_floor:
                return TransactionState.COMMITTED, txn_id
            return TransactionState.ABORTED, None
        return entry.state, entry.commit_time

    # -- introspection ------------------------------------------------------------

    def state_of(self, txn_id: int) -> TransactionState:
        """Current state of *txn_id*."""
        with self._lock:
            return self._require(txn_id).state

    def entry(self, txn_id: int) -> TxnEntry:
        """Copy of the manager entry for *txn_id*."""
        with self._lock:
            source = self._require(txn_id)
            return TxnEntry(source.txn_id, source.state, source.begin_time,
                            source.commit_time)

    @property
    def active_count(self) -> int:
        """Transactions in ACTIVE or PRE_COMMIT state."""
        with self._lock:
            return sum(1 for entry in self._entries.values()
                       if entry.state in (TransactionState.ACTIVE,
                                          TransactionState.PRE_COMMIT))

    def gc(self, before: int, *, include_aborted: bool = False) -> int:
        """Drop finished entries whose commit time precedes *before*.

        Safe only once every Start Time marker of those transactions has
        been lazily stamped or compressed away — either asserted by the
        caller (manual use in benchmark loops) or established by the
        automatic sweep (:meth:`enable_auto_gc`). *include_aborted*
        additionally drops old ABORTED entries; that is always safe
        because :meth:`lookup` reports unknown ids as aborted.
        """
        with self._lock:
            doomed = [
                txn_id for txn_id, entry in self._entries.items()
                if (entry.state is TransactionState.COMMITTED
                    and entry.commit_time is not None
                    and entry.commit_time < before)
                or (include_aborted
                    and entry.state is TransactionState.ABORTED
                    and entry.begin_time < before)
            ]
            # Advance the floor BEFORE deleting: lookup is lock-free,
            # so a reader racing this block must see either the entry
            # (floor irrelevant) or the raised floor (unknown id below
            # it resolves committed-at-begin) — the reverse order opens
            # a window where a just-dropped committed entry reads as
            # ABORTED and a committed version turns invisible.
            if doomed and before > self._gc_floor:
                self._gc_floor = before
            for txn_id in doomed:
                del self._entries[txn_id]
            return len(doomed)

    # -- automatic GC (epoch-wired) ---------------------------------------

    def enable_auto_gc(self, epoch_manager: Any, *,
                       threshold: int = 4096) -> None:
        """Prune the entry table automatically during long workloads.

        Once more than *threshold* entries accumulate, :meth:`begin`
        lazily runs a two-phase collection wired to *epoch_manager*:

        1. **Sweep** — every registered stamp source (see
           :meth:`register_stamp_source`) resolves old transaction
           markers into plain commit times in place, then a candidate
           horizon is computed: the epoch manager's lazily-stamped
           low-water mark, capped by every live transaction's begin
           time and every reported stamping blocker.
        2. **Drop** — on a later trigger, once the epoch manager shows
           no query active from before the sweep completed (so nobody
           can still hold a pre-stamp marker cell in hand), entries
           below the candidate horizon are dropped.

        The phases piggyback on ``begin()`` calls, so no vacuum thread
        is needed — the same opportunistic style the epoch manager uses
        for page reclamation.
        """
        self._auto_gc_epoch = epoch_manager
        self._auto_gc_threshold = max(threshold, 1)

    def register_stamp_source(self, source: Callable[[], int | None],
                              ) -> None:
        """Register a marker-stamping sweep (one per table).

        *source* stamps what it can and returns the lowest commit time
        it could not stamp (or None); the auto-GC horizon never passes
        a reported blocker.
        """
        self._stamp_sources.append(source)

    def unregister_stamp_source(self, source: Callable[[], int | None],
                                ) -> None:
        """Remove a stamp source (dropped table); unknown is a no-op."""
        try:
            self._stamp_sources.remove(source)
        except ValueError:
            pass

    def _maybe_auto_gc(self) -> None:
        if not self._auto_gc_lock.acquire(blocking=False):
            return  # another thread is already collecting
        try:
            epoch = self._auto_gc_epoch
            # Phase 2 of the previous cycle: drop the candidate once
            # every query that might have read a pre-stamp marker cell
            # has drained past the sweep completion time.
            candidate = self._gc_candidate
            if candidate is not None:
                sweep_time, horizon = candidate
                oldest = epoch.oldest_active_begin()
                if oldest is None or oldest > sweep_time:
                    self._stat_auto_gc_dropped.add(self.gc(
                        horizon, include_aborted=True))
                    self._gc_candidate = None
            # Phase 1: sweep markers and stamp the next candidate.
            if self._gc_candidate is None \
                    and len(self._entries) >= self._auto_gc_threshold:
                horizon = epoch.low_water_mark(self.clock.now())
                for source in self._stamp_sources:
                    blocker = source()
                    if blocker is not None and blocker < horizon:
                        horizon = blocker
                with self._lock:
                    for entry in self._entries.values():
                        if entry.state in (TransactionState.ACTIVE,
                                           TransactionState.PRE_COMMIT) \
                                and entry.begin_time < horizon:
                            horizon = entry.begin_time
                self._gc_candidate = (self.clock.advance(), horizon)
            # Back off either way: when the horizon is pinned (e.g. a
            # row-layout blocker that can never be stamped) a sweep per
            # begin() would pay the full segment+entry walk for zero
            # progress — amortise it over ~half a threshold of begins.
            self._next_auto_gc_begun = self._stat_begun.value \
                + max(self._auto_gc_threshold // 2, 1)
        finally:
            self._auto_gc_lock.release()
