"""Transaction workers: threads that run batches of transactions.

The benchmark harness (Section 6.1) assigns each stream of short update
transactions to one thread; :class:`TransactionWorker` is that thread.
A transaction body is a callable receiving the open
:class:`~repro.txn.transaction.Transaction`; conflict aborts
(write-write, validation) are retried up to a bound, mirroring the
paper's assumption that "roll backs are inexpensive and conflicts are
rare".
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from ..core.types import IsolationLevel
from ..errors import TransactionAborted
from .manager import TransactionManager
from .transaction import Transaction

#: A transaction body: receives the open transaction, issues statements.
TransactionBody = Callable[[Transaction], None]


@dataclass
class WorkerStats:
    """Outcome counters of one worker run."""

    committed: int = 0
    aborted: int = 0
    retries: int = 0
    gave_up: int = 0

    def merge(self, other: "WorkerStats") -> None:
        """Accumulate *other* into self."""
        self.committed += other.committed
        self.aborted += other.aborted
        self.retries += other.retries
        self.gave_up += other.gave_up


class TransactionWorker:
    """Runs transaction bodies, one at a time, with bounded retries."""

    def __init__(self, manager: TransactionManager, *,
                 isolation: IsolationLevel = IsolationLevel.READ_COMMITTED,
                 max_retries: int = 16, name: str | None = None) -> None:
        self.manager = manager
        self.isolation = isolation
        self.max_retries = max_retries
        self.name = name
        self._bodies: list[TransactionBody] = []
        self._thread: threading.Thread | None = None
        self.stats = WorkerStats()
        #: Engine-wide retry counter mirrored from the per-run stats.
        self._retry_counter = manager._stat_retries
        #: Set by the harness to stop a time-boxed run early.
        self.stop_event = threading.Event()

    def add(self, body: TransactionBody) -> None:
        """Queue one transaction body for execution."""
        self._bodies.append(body)

    def extend(self, bodies: list[TransactionBody]) -> None:
        """Queue several transaction bodies."""
        self._bodies.extend(bodies)

    # -- synchronous execution --------------------------------------------------

    def run_one(self, body: TransactionBody) -> bool:
        """Run one body with retries; True when it committed."""
        attempts = 0
        while attempts <= self.max_retries:
            if self.stop_event.is_set():
                return False
            txn = Transaction(self.manager, isolation=self.isolation)
            try:
                body(txn)
            except TransactionAborted:
                self.stats.aborted += 1
                self.stats.retries += 1
                self._retry_counter.add()
                attempts += 1
                continue
            if txn.commit():
                self.stats.committed += 1
                return True
            self.stats.aborted += 1
            self.stats.retries += 1
            self._retry_counter.add()
            attempts += 1
        self.stats.gave_up += 1
        return False

    def run(self) -> WorkerStats:
        """Run every queued body in order (in the calling thread)."""
        for body in self._bodies:
            if self.stop_event.is_set():
                break
            self.run_one(body)
        return self.stats

    # -- threaded execution --------------------------------------------------------

    def start(self) -> None:
        """Run the queued bodies in a background thread."""
        if self._thread is not None:
            raise RuntimeError("worker already started")
        self._thread = threading.Thread(target=self.run, daemon=True,
                                        name=self.name or "lstore-worker")
        self._thread.start()

    def join(self, timeout: float | None = None) -> WorkerStats:
        """Wait for the background run to finish; return the stats."""
        if self._thread is not None:
            self._thread.join(timeout)
        return self.stats
