"""Transaction workers: threads that run batches of transactions.

The benchmark harness (Section 6.1) assigns each stream of short update
transactions to one thread; :class:`TransactionWorker` is that thread.
A transaction body is a callable receiving the open
:class:`~repro.txn.transaction.Transaction`; conflict aborts
(write-write, validation, backpressure) are retried up to a bound,
mirroring the paper's assumption that "roll backs are inexpensive and
conflicts are rare".

Retries are *civilized*: instead of hot-spinning (which under hot-key
contention just re-collides the same writers, the thrash the ROADMAP's
CC item documents), each retry sleeps a capped, jittered exponential
backoff (``retry_backoff_seconds`` base, doubling per attempt, halved-
to-1.5× jitter), observed by the ``txn.retry_backoff_seconds``
histogram. ``deadline_seconds`` bounds a body's total attempt budget in
wall time: each attempt's transaction carries the remaining time as its
per-transaction deadline, and :class:`~repro.errors.DeadlineExceeded`
gives up instead of retrying. Give-ups count into ``txn.giveups``.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Callable

from ..core.types import IsolationLevel
from ..errors import DeadlineExceeded, TransactionAborted
from .manager import TransactionManager
from .transaction import Transaction

#: A transaction body: receives the open transaction, issues statements.
TransactionBody = Callable[[Transaction], None]


@dataclass
class WorkerStats:
    """Outcome counters of one worker run."""

    committed: int = 0
    aborted: int = 0
    retries: int = 0
    gave_up: int = 0
    #: Total seconds this worker slept in retry backoff.
    backoff_seconds: float = 0.0

    def merge(self, other: "WorkerStats") -> None:
        """Accumulate *other* into self."""
        self.committed += other.committed
        self.aborted += other.aborted
        self.retries += other.retries
        self.gave_up += other.gave_up
        self.backoff_seconds += other.backoff_seconds


class TransactionWorker:
    """Runs transaction bodies, one at a time, with bounded retries."""

    def __init__(self, manager: TransactionManager, *,
                 isolation: IsolationLevel = IsolationLevel.READ_COMMITTED,
                 max_retries: int = 16, name: str | None = None,
                 retry_backoff_seconds: float = 0.0002,
                 retry_backoff_cap: float = 0.02,
                 deadline_seconds: float | None = None,
                 seed: int | None = None) -> None:
        self.manager = manager
        self.isolation = isolation
        self.max_retries = max_retries
        self.name = name
        #: First-retry backoff; 0 disables sleeping (the original
        #: hot-spin, still available for deterministic tests).
        self.retry_backoff_seconds = retry_backoff_seconds
        self.retry_backoff_cap = retry_backoff_cap
        #: Wall-clock budget per body across all its attempts; each
        #: attempt's transaction gets the remaining time as its
        #: deadline. None = bounded by max_retries only.
        self.deadline_seconds = deadline_seconds
        self._rng = random.Random(seed)
        self._bodies: list[TransactionBody] = []
        self._thread: threading.Thread | None = None
        self.stats = WorkerStats()
        #: Engine-wide counters mirrored from the per-run stats.
        self._retry_counter = manager._stat_retries
        self._giveup_counter = manager._stat_giveups
        self._backoff_histogram = manager.retry_backoff_seconds
        #: Set by the harness to stop a time-boxed run early.
        self.stop_event = threading.Event()

    def add(self, body: TransactionBody) -> None:
        """Queue one transaction body for execution."""
        self._bodies.append(body)

    def extend(self, bodies: list[TransactionBody]) -> None:
        """Queue several transaction bodies."""
        self._bodies.extend(bodies)

    # -- synchronous execution --------------------------------------------------

    def run_one(self, body: TransactionBody) -> bool:
        """Run one body with retries; True when it committed."""
        deadline = None if self.deadline_seconds is None \
            else perf_counter() + self.deadline_seconds
        attempts = 0
        while True:
            if self.stop_event.is_set():
                return False
            remaining = None
            if deadline is not None:
                remaining = deadline - perf_counter()
                if remaining <= 0.0:
                    return self._give_up()
            txn = Transaction(self.manager, isolation=self.isolation,
                              deadline_seconds=remaining)
            try:
                body(txn)
            except DeadlineExceeded:
                self.stats.aborted += 1
                return self._give_up()
            except TransactionAborted:
                committed = False
            else:
                try:
                    committed = txn.commit()
                except DeadlineExceeded:
                    self.stats.aborted += 1
                    return self._give_up()
            if committed:
                self.stats.committed += 1
                return True
            self.stats.aborted += 1
            attempts += 1
            if attempts > self.max_retries:
                return self._give_up()
            self.stats.retries += 1
            self._retry_counter.add()
            self._backoff(attempts, deadline)

    def _give_up(self) -> bool:
        self.stats.gave_up += 1
        self._giveup_counter.add()
        return False

    def _backoff(self, attempts: int, deadline: float | None) -> None:
        """Sleep the capped, jittered exponential retry backoff."""
        base = self.retry_backoff_seconds
        if base <= 0.0:
            return
        delay = min(self.retry_backoff_cap,
                    base * (1 << min(attempts - 1, 16)))
        delay *= 0.5 + self._rng.random()
        if deadline is not None:
            delay = min(delay, deadline - perf_counter())
        if delay <= 0.0:
            return
        if self._backoff_histogram.enabled:
            self._backoff_histogram.observe(delay)
        self.stats.backoff_seconds += delay
        # Event.wait, not sleep: a harness stop cuts the nap short.
        self.stop_event.wait(delay)

    def run(self) -> WorkerStats:
        """Run every queued body in order (in the calling thread)."""
        for body in self._bodies:
            if self.stop_event.is_set():
                break
            self.run_one(body)
        return self.stats

    # -- threaded execution --------------------------------------------------------

    def start(self) -> None:
        """Run the queued bodies in a background thread."""
        if self._thread is not None:
            raise RuntimeError("worker already started")
        self._thread = threading.Thread(target=self.run, daemon=True,
                                        name=self.name or "lstore-worker")
        self._thread.start()

    def join(self, timeout: float | None = None) -> WorkerStats:
        """Wait for the background run to finish; return the stats."""
        if self._thread is not None:
            self._thread.join(timeout)
        return self.stats
