"""Transaction layer: OCC, latches, clock, workers (Section 5)."""

from .clock import SynchronizedClock, TransactionIdSource
from .latch import (AtomicCell, AtomicCounter, IndirectionVector,
                    SharedExclusiveLatch)
from .manager import TransactionManager, TxnEntry
from .transaction import Transaction
from .worker import TransactionWorker, WorkerStats

__all__ = [
    "AtomicCell",
    "AtomicCounter",
    "IndirectionVector",
    "SharedExclusiveLatch",
    "SynchronizedClock",
    "Transaction",
    "TransactionIdSource",
    "TransactionManager",
    "TransactionWorker",
    "TxnEntry",
    "WorkerStats",
]
