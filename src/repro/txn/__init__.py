"""Transaction layer: OCC, latches, clock, workers (Section 5).

The OLTP **write path** is the latency-critical spine of this layer;
one statement flows through four stages, each deliberately lean:

1. **Latch** — a CAS on the latch bit of the record's indirection word
   (:class:`~repro.txn.latch.IndirectionVector`); failure *is* the
   write-write conflict signal (Section 5.1.1).
2. **Fused append** — :meth:`~repro.core.table.Table.occ_append` runs
   the paper's second conflict check and the cumulative-update source
   lookup in a *single* chain pass, then appends the Lemma-2 snapshot
   record (when a column is first-updated) and the update record from
   one allocation-latch hold through the flat-cell write path: cells
   stream from parallel column/value sequences (no per-record dicts,
   no ``SchemaEncoding`` object round-trips), the dirty/horizon scan
   bookkeeping folds into one lock acquisition, and shared columns of
   the snapshot+update pair write both page slots under one page-lock
   hold.
3. **Install** — one CAS points the indirection at the new tail RID
   and releases the latch; aborting between append and install leaves
   the chain untouched (tombstones only, Section 5.1.3).
4. **Commit / group commit** — transactions with nothing to validate
   take :meth:`~repro.txn.manager.TransactionManager.commit_fast`
   (ACTIVE → PRE_COMMIT → COMMITTED in one manager-lock hold, so
   snapshot readers barely ever observe a pre-commit window); with
   the WAL enabled, the commit record's durability rides the
   leader/follower **group commit** of
   :class:`~repro.wal.log.LogManager` — concurrent committers share
   one fsync instead of paying one each.

Engine statistics along this path use per-thread striped counters
(:class:`~repro.txn.latch.StripedCounter`) — the former global stat
mutex was a pure serialisation point across writer threads.
"""

from .clock import SynchronizedClock, TransactionIdSource
from .latch import (AtomicCell, AtomicCounter, IndirectionVector,
                    SharedExclusiveLatch, StripedCounter)
from .manager import TransactionManager, TxnEntry
from .transaction import Transaction
from .worker import TransactionWorker, WorkerStats

__all__ = [
    "AtomicCell",
    "AtomicCounter",
    "IndirectionVector",
    "StripedCounter",
    "SharedExclusiveLatch",
    "SynchronizedClock",
    "Transaction",
    "TransactionIdSource",
    "TransactionManager",
    "TransactionWorker",
    "TxnEntry",
    "WorkerStats",
]
