"""Multi-statement transactions over the OCC protocol.

:class:`Transaction` is the user-facing handle: statements address
records by primary key, reads respect the isolation level, and commit
runs the paper's validate→commit sequence against the transaction
manager. Statement errors that abort the transaction raise subclasses
of :class:`~repro.errors.TransactionAborted`, which the
:class:`~repro.txn.worker.TransactionWorker` treats as retryable.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..core.table import DELETED, Table
from ..core.types import IsolationLevel, TransactionState
from ..errors import (IllegalTransactionState, KeyNotFoundError,
                      TransactionAborted)
from .manager import TransactionManager
from .occ import (TxnContext, occ_insert, occ_post_commit, occ_read,
                  occ_rollback, occ_validate, occ_write)


class Transaction:
    """One ACID transaction (Section 5.1.1 lifecycle).

    Use imperatively::

        txn = Transaction(manager)
        row = txn.select(table, key=42)
        txn.update(table, 42, {1: row[1] + 1})
        txn.commit()

    or as a context manager (commits on success, aborts on error)::

        with Transaction(manager) as txn:
            txn.insert(table, [42, 0, 0])
    """

    def __init__(self, manager: TransactionManager, *,
                 isolation: IsolationLevel = IsolationLevel.READ_COMMITTED,
                 ) -> None:
        self.manager = manager
        entry = manager.begin()
        self.ctx = TxnContext(txn_id=entry.txn_id,
                              begin_time=entry.begin_time,
                              isolation=isolation)
        self._finished = False
        self.commit_time: int | None = None

    # -- properties ----------------------------------------------------------

    @property
    def txn_id(self) -> int:
        """Unique, monotonically increasing transaction id."""
        return self.ctx.txn_id

    @property
    def begin_time(self) -> int:
        """Begin time from the synchronized clock."""
        return self.ctx.begin_time

    @property
    def state(self) -> TransactionState:
        """Current state in the transaction manager."""
        return self.manager.state_of(self.txn_id)

    def _check_active(self) -> None:
        if self._finished:
            raise IllegalTransactionState(
                "txn %d already finished" % self.txn_id)

    def _rid_for_key(self, table: Table, key: Any) -> int:
        rid = table.index.primary.get(key)
        if rid is None:
            raise KeyNotFoundError(
                "no record with key %r in table %r"
                % (key, table.schema.name))
        return rid

    # -- statements ------------------------------------------------------------

    def insert(self, table: Table, values: Sequence[Any]) -> int:
        """Insert a row; visible to others only after commit."""
        self._check_active()
        try:
            return occ_insert(self.ctx, table, values)
        except TransactionAborted:
            self.abort()
            raise

    def select(self, table: Table, key: Any,
               data_columns: Sequence[int] | None = None, *,
               speculative: bool = False) -> dict[int, Any] | None:
        """Read the visible version of the record with *key*.

        Returns None when the key exists in the index but no version is
        visible (e.g. deleted, or inserted after this snapshot).
        """
        self._check_active()
        rid = table.index.primary.get(key)
        if rid is None:
            return None
        key_index = table.schema.key_index
        fetch = data_columns
        if fetch is not None and key_index not in fetch:
            fetch = tuple(fetch) + (key_index,)
        values = occ_read(self.ctx, table, rid, fetch,
                          speculative=speculative)
        if values is None:
            return None
        # Deferred index maintenance: re-check the key predicate on the
        # visible version (Section 3.1's re-evaluation after lookup).
        if values[key_index] != key:
            return None
        return values

    def select_rid(self, table: Table, rid: int,
                   data_columns: Sequence[int] | None = None, *,
                   speculative: bool = False) -> dict[int, Any] | None:
        """Read a record by base RID (scan-style access)."""
        self._check_active()
        return occ_read(self.ctx, table, rid, data_columns,
                        speculative=speculative)

    def update(self, table: Table, key: Any,
               updates: dict[int, Any]) -> int:
        """Update the record with *key*; aborts this txn on conflict."""
        self._check_active()
        try:
            rid = self._rid_for_key(table, key)
            return occ_write(self.ctx, table, rid, updates)
        except (TransactionAborted, KeyNotFoundError):
            self.abort()
            raise

    def delete(self, table: Table, key: Any) -> int:
        """Delete the record with *key* (an all-∅ tail record)."""
        self._check_active()
        try:
            rid = self._rid_for_key(table, key)
            return occ_write(self.ctx, table, rid, {}, is_delete=True)
        except (TransactionAborted, KeyNotFoundError):
            self.abort()
            raise

    def increment(self, table: Table, key: Any, data_column: int,
                  delta: int = 1) -> int:
        """Read-modify-write of one column (the classic OCC stressor)."""
        self._check_active()
        try:
            rid = self._rid_for_key(table, key)
            values = occ_read(self.ctx, table, rid, (data_column,))
            if values is None:
                raise KeyNotFoundError(
                    "key %r has no visible version" % (key,))
            return occ_write(self.ctx, table, rid,
                             {data_column: values[data_column] + delta})
        except (TransactionAborted, KeyNotFoundError):
            self.abort()
            raise

    def sum(self, table: Table, key_low: Any, key_high: Any,
            data_column: int) -> int:
        """SUM of *data_column* over keys in ``[key_low, key_high]``.

        Candidates come from the ordered primary index (O(log N + k)
        instead of a full index walk). READ_COMMITTED routes through
        the scan executor's batched partitions (clean records read
        straight from base/merged chains, own writes stay visible via
        the transaction id). Snapshot-style isolation levels route
        through the executor's snapshot plane at this transaction's
        begin time while the transaction has no writes of its own
        (``as_of`` visibility is then exactly the snapshot predicate);
        once own writes exist, each candidate reads under the full
        own-or-snapshot predicate per record.
        """
        self._check_active()
        from ..exec.executor import execute_scan
        from ..exec.operators import ColumnSum
        if self.ctx.isolation is IsolationLevel.READ_COMMITTED:
            rids = [rid for _, rid in
                    table.index.primary.range_items(key_low, key_high)]
            if not rids:
                return 0
            return execute_scan(table, ColumnSum(data_column), rids=rids,
                                txn_id=self.txn_id)
        if not self.ctx.writeset and not self.ctx.insertset:
            rids = [rid for _, rid in
                    table.index.primary.range_items(key_low, key_high)]
            if not rids:
                return 0
            return execute_scan(table, ColumnSum(data_column), rids=rids,
                                as_of=self.ctx.begin_time)
        predicate = self.ctx.read_predicate()
        total = 0
        for _, rid in table.index.primary.range_items(key_low, key_high):
            values = table.read_latest(rid, (data_column,), predicate)
            if values is None or values is DELETED:
                continue
            total += values[data_column]
        return total

    def scan_sum(self, table: Table, data_column: int) -> int:
        """Full-table SUM of *data_column* under this transaction.

        The analytical companion of :meth:`sum`: READ_COMMITTED scans
        latest-committed (plus own writes) on the vectorised plane;
        snapshot-style isolation levels run a repeatable full-table
        SUM at this transaction's begin time on the executor's
        **version-horizon plane** — base column slices masked by the
        Start Time / Last Updated slices, only straddling or dirty
        records walking their lineage — so a long-running reader
        re-issuing the scan keeps getting the same answer at columnar
        scan speed while writers churn. Falls back to the per-record
        predicate walk once the transaction has writes of its own.
        """
        self._check_active()
        from ..exec.executor import execute_scan
        from ..exec.operators import ColumnSum
        if self.ctx.isolation is IsolationLevel.READ_COMMITTED:
            return execute_scan(table, ColumnSum(data_column),
                                txn_id=self.txn_id)
        if not self.ctx.writeset and not self.ctx.insertset:
            return execute_scan(table, ColumnSum(data_column),
                                as_of=self.ctx.begin_time)
        from ..core.types import is_null
        predicate = self.ctx.read_predicate()
        total = 0
        for _, values in table.scan_records((data_column,), predicate):
            value = values[data_column]
            if not is_null(value):
                total += value
        return total

    # -- lifecycle ------------------------------------------------------------

    def commit(self) -> bool:
        """Validate and commit; returns False (aborted) on validation failure.

        Note the paper's observation that commit must stay short: the
        transaction id is *not* swapped for the commit time in the tail
        records — readers resolve markers lazily via the manager.
        """
        self._check_active()
        try:
            commit_time = self.manager.enter_precommit(self.txn_id)
            occ_validate(self.ctx, commit_time)
        except TransactionAborted:
            self._do_abort()
            return False
        except BaseException:
            # Never leave the transaction stranded in PRE_COMMIT: an
            # undecided entry makes snapshot readers settle (wait) on
            # its markers until they time out.
            self._do_abort()
            raise
        self.manager.commit(self.txn_id)
        self.commit_time = commit_time
        self._finished = True
        occ_post_commit(self.ctx)
        return True

    def abort(self) -> None:
        """Abort and roll back (tombstones only — no physical removal)."""
        if self._finished:
            return
        self._do_abort()

    def _do_abort(self) -> None:
        state = self.manager.state_of(self.txn_id)
        if state in (TransactionState.ACTIVE, TransactionState.PRE_COMMIT):
            self.manager.abort(self.txn_id)
        occ_rollback(self.ctx)
        self._finished = True

    # -- context manager ---------------------------------------------------------

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type: type | None, exc: BaseException | None,
                 tb: object | None) -> bool:
        if exc_type is None:
            if not self._finished:
                self.commit()
            return False
        if not self._finished:
            self.abort()
        return False
