"""Multi-statement transactions over the OCC protocol.

:class:`Transaction` is the user-facing handle: statements address
records by primary key, reads respect the isolation level, and commit
runs the paper's validate→commit sequence against the transaction
manager. Statement errors that abort the transaction raise subclasses
of :class:`~repro.errors.TransactionAborted`, which the
:class:`~repro.txn.worker.TransactionWorker` treats as retryable.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Sequence

from ..core.table import DELETED, Table
from ..core.types import IsolationLevel, TransactionState, is_null
from ..errors import (DeadlineExceeded, IllegalTransactionState,
                      KeyNotFoundError, TransactionAborted,
                      ValidationFailure)
from .manager import TransactionManager
from .occ import (TxnContext, occ_insert, occ_post_commit, occ_read,
                  occ_rollback, occ_validate, occ_write)


class Transaction:
    """One ACID transaction (Section 5.1.1 lifecycle).

    Use imperatively::

        txn = Transaction(manager)
        row = txn.select(table, key=42)
        txn.update(table, 42, {1: row[1] + 1})
        txn.commit()

    or as a context manager (commits on success, aborts on error)::

        with Transaction(manager) as txn:
            txn.insert(table, [42, 0, 0])
    """

    def __init__(self, manager: TransactionManager, *,
                 isolation: IsolationLevel = IsolationLevel.READ_COMMITTED,
                 deadline_seconds: float | None = None,
                 ) -> None:
        self.manager = manager
        entry = manager.begin()
        self.ctx = TxnContext(txn_id=entry.txn_id,
                              begin_time=entry.begin_time,
                              isolation=isolation)
        self._finished = False
        #: perf_counter deadline, or None (the default: one is-None
        #: check per statement, nothing else on the hot path). Every
        #: statement and commit() checks it; past the deadline the
        #: transaction aborts with :class:`~repro.errors.
        #: DeadlineExceeded`, which workers treat as *not* retryable.
        self._deadline = None if deadline_seconds is None \
            else perf_counter() + deadline_seconds
        self.commit_time: int | None = None

    # -- properties ----------------------------------------------------------

    @property
    def txn_id(self) -> int:
        """Unique, monotonically increasing transaction id."""
        return self.ctx.txn_id

    @property
    def begin_time(self) -> int:
        """Begin time from the synchronized clock."""
        return self.ctx.begin_time

    @property
    def state(self) -> TransactionState:
        """Current state in the transaction manager."""
        return self.manager.state_of(self.txn_id)

    def _check_active(self) -> None:
        if self._finished:
            raise IllegalTransactionState(
                "txn %d already finished" % self.txn_id)
        deadline = self._deadline
        if deadline is not None and perf_counter() >= deadline:
            self.manager._stat_deadline_aborts.add()
            self._do_abort()
            raise DeadlineExceeded(
                "txn %d exceeded its deadline" % self.txn_id)

    def _rid_for_key(self, table: Table, key: Any) -> int:
        rid = table.index.primary.get(key)
        if rid is None:
            raise KeyNotFoundError(
                "no record with key %r in table %r"
                % (key, table.schema.name))
        return rid

    # -- statements ------------------------------------------------------------

    def insert(self, table: Table, values: Sequence[Any]) -> int:
        """Insert a row; visible to others only after commit."""
        self._check_active()
        try:
            return occ_insert(self.ctx, table, values)
        except TransactionAborted:
            self.abort()
            raise

    def select(self, table: Table, key: Any,
               data_columns: Sequence[int] | None = None, *,
               speculative: bool = False) -> dict[int, Any] | None:
        """Read the visible version of the record with *key*.

        Returns None when the key exists in the index but no version is
        visible (e.g. deleted, or inserted after this snapshot).
        """
        self._check_active()
        rid = table.index.primary.get(key)
        if rid is None:
            return None
        key_index = table.schema.key_index
        fetch = data_columns
        added_key = fetch is not None and key_index not in fetch
        if added_key:
            fetch = tuple(fetch) + (key_index,)
        ctx = self.ctx
        if not speculative \
                and ctx.isolation is IsolationLevel.READ_COMMITTED:
            # Inlined occ_read fast path: the statement-read hot loop
            # (8 of 10 statements in the paper's short transactions)
            # skips the protocol-frame dispatch entirely.
            values = table.read_latest_fast(rid, fetch, ctx.txn_id)
            if values is None or values is DELETED:
                return None
        else:
            values = occ_read(ctx, table, rid, fetch,
                              speculative=speculative)
            if values is None:
                return None
        # Deferred index maintenance: re-check the key predicate on the
        # visible version (Section 3.1's re-evaluation after lookup).
        if values[key_index] != key:
            return None
        if added_key:
            # Hand back exactly the requested columns, so callers
            # (e.g. the bench engine adapter) need no re-filter pass.
            del values[key_index]
        return values

    def select_rid(self, table: Table, rid: int,
                   data_columns: Sequence[int] | None = None, *,
                   speculative: bool = False) -> dict[int, Any] | None:
        """Read a record by base RID (scan-style access)."""
        self._check_active()
        return occ_read(self.ctx, table, rid, data_columns,
                        speculative=speculative)

    def update(self, table: Table, key: Any,
               updates: dict[int, Any]) -> int:
        """Update the record with *key*; aborts this txn on conflict."""
        self._check_active()
        try:
            rid = self._rid_for_key(table, key)
            return occ_write(self.ctx, table, rid, updates)
        except (TransactionAborted, KeyNotFoundError):
            self.abort()
            raise

    def delete(self, table: Table, key: Any) -> int:
        """Delete the record with *key* (an all-∅ tail record)."""
        self._check_active()
        try:
            rid = self._rid_for_key(table, key)
            return occ_write(self.ctx, table, rid, {}, is_delete=True)
        except (TransactionAborted, KeyNotFoundError):
            self.abort()
            raise

    def increment(self, table: Table, key: Any, data_column: int,
                  delta: int = 1) -> int:
        """Read-modify-write of one column (the classic OCC stressor)."""
        self._check_active()
        try:
            rid = self._rid_for_key(table, key)
            values = occ_read(self.ctx, table, rid, (data_column,))
            if values is None:
                raise KeyNotFoundError(
                    "key %r has no visible version" % (key,))
            return occ_write(self.ctx, table, rid,
                             {data_column: values[data_column] + delta})
        except (TransactionAborted, KeyNotFoundError):
            self.abort()
            raise

    def _own_write_rids(self, table: Table) -> set[int]:
        """Base RIDs this transaction has written/inserted in *table*."""
        rids = {entry.rid for entry in self.ctx.writeset
                if entry.table is table}
        rids.update(entry.rid for entry in self.ctx.insertset
                    if entry.table is table)
        return rids

    def _own_visible_value(self, table: Table, rid: int,
                           data_column: int) -> Any:
        """Value of *rid* under the own-or-snapshot predicate.

        None when invisible or deleted; ∅ never contributes to sums.
        """
        values = table.read_latest(rid, (data_column,),
                                   self.ctx.read_predicate())
        if values is None or values is DELETED:
            return None
        value = values[data_column]
        return None if is_null(value) else value

    def sum(self, table: Table, key_low: Any, key_high: Any,
            data_column: int) -> int:
        """SUM of *data_column* over keys in ``[key_low, key_high]``.

        Candidates come from the ordered primary index (O(log N + k)
        instead of a full index walk). READ_COMMITTED routes through
        the scan executor's batched partitions (clean records read
        straight from base/merged chains, own writes stay visible via
        the transaction id). Snapshot-style isolation levels route
        through the executor's snapshot plane at this transaction's
        begin time; once the transaction has writes of its own, the
        batch scan still serves every untouched candidate and a small
        **own-writes overlay** patches just the written/inserted RIDs
        per record under the own-or-snapshot predicate — the previous
        fallback read *every* candidate per record the moment a single
        own write existed.
        """
        self._check_active()
        from ..exec.executor import execute_scan
        from ..exec.operators import ColumnSum
        ctx = self.ctx
        if ctx.isolation is IsolationLevel.READ_COMMITTED:
            rids = [rid for _, rid in
                    table.index.primary.range_items(key_low, key_high)]
            if not rids:
                return 0
            return execute_scan(table, ColumnSum(data_column), rids=rids,
                                txn_id=self.txn_id)
        rids = [rid for _, rid in
                table.index.primary.range_items(key_low, key_high)]
        if not rids:
            return 0
        if not ctx.writeset and not ctx.insertset:
            return execute_scan(table, ColumnSum(data_column), rids=rids,
                                as_of=ctx.begin_time)
        own = self._own_write_rids(table)
        untouched = [rid for rid in rids if rid not in own]
        total = 0
        if untouched:
            total = execute_scan(table, ColumnSum(data_column),
                                 rids=untouched, as_of=ctx.begin_time)
        for rid in rids:
            if rid not in own:
                continue
            value = self._own_visible_value(table, rid, data_column)
            if value is not None:
                total += value
        return total

    def scan_sum(self, table: Table, data_column: int) -> int:
        """Full-table SUM of *data_column* under this transaction.

        The analytical companion of :meth:`sum`: READ_COMMITTED scans
        latest-committed (plus own writes) on the vectorised plane;
        snapshot-style isolation levels run a repeatable full-table
        SUM at this transaction's begin time on the executor's
        **version-horizon plane** — base column slices masked by the
        Start Time / Last Updated slices, only straddling or dirty
        records walking their lineage — so a long-running reader
        re-issuing the scan keeps getting the same answer at columnar
        scan speed while writers churn. Own writes overlay on top of
        the plane result: each written/inserted RID contributes its
        own-visible value instead of its begin-time value (the
        begin-time contribution is re-derived per RID through the
        allocation-free ``version_column_value`` walk and subtracted)
        — the previous fallback walked the whole table per record the
        moment a single own write existed.
        """
        self._check_active()
        from ..exec.executor import execute_scan
        from ..exec.operators import ColumnSum
        ctx = self.ctx
        if ctx.isolation is IsolationLevel.READ_COMMITTED:
            return execute_scan(table, ColumnSum(data_column),
                                txn_id=self.txn_id)
        total = execute_scan(table, ColumnSum(data_column),
                             as_of=ctx.begin_time)
        if not ctx.writeset and not ctx.insertset:
            return total
        for rid in self._own_write_rids(table):
            update_range, offset = table.locate(rid)
            as_of_value = table.version_column_value(
                update_range, offset, data_column, ctx.begin_time)
            if as_of_value is not None and as_of_value is not DELETED \
                    and not is_null(as_of_value):
                total -= as_of_value
            value = self._own_visible_value(table, rid, data_column)
            if value is not None:
                total += value
        return total

    # -- lifecycle ------------------------------------------------------------

    def commit(self) -> bool:
        """Validate and commit; returns False (aborted) on validation failure.

        Note the paper's observation that commit must stay short: the
        transaction id is *not* swapped for the commit time in the tail
        records — readers resolve markers lazily via the manager.
        """
        self._check_active()
        timer = self.manager.commit_latency
        started = perf_counter() if timer.enabled else 0.0
        if not self.ctx.needs_validation:
            # Nothing to validate: fuse PRE_COMMIT → COMMITTED into one
            # manager-lock hold (half the lock traffic per OLTP commit,
            # and snapshot readers barely ever observe the pre-commit
            # window they would otherwise settle on).
            try:
                commit_time = self.manager.commit_fast(self.txn_id)
            except TransactionAborted:
                self._do_abort()
                if timer.enabled:
                    timer.observe(perf_counter() - started)
                return False
            except BaseException:
                self._do_abort()
                raise
            self.commit_time = commit_time
            self._finished = True
            occ_post_commit(self.ctx)
            if timer.enabled:
                timer.observe(perf_counter() - started)
            return True
        try:
            commit_time = self.manager.enter_precommit(self.txn_id)
            occ_validate(self.ctx, commit_time)
        except TransactionAborted as exc:
            if isinstance(exc, ValidationFailure):
                self.manager._stat_validation_failures.add()
            self._do_abort()
            if timer.enabled:
                timer.observe(perf_counter() - started)
            return False
        except BaseException:
            # Never leave the transaction stranded in PRE_COMMIT: an
            # undecided entry makes snapshot readers settle (wait) on
            # its markers until they time out.
            self._do_abort()
            raise
        self.manager.commit(self.txn_id)
        self.commit_time = commit_time
        self._finished = True
        occ_post_commit(self.ctx)
        if timer.enabled:
            timer.observe(perf_counter() - started)
        return True

    def abort(self) -> None:
        """Abort and roll back (tombstones only — no physical removal)."""
        if self._finished:
            return
        self._do_abort()

    def _do_abort(self) -> None:
        state = self.manager.state_of(self.txn_id)
        if state in (TransactionState.ACTIVE, TransactionState.PRE_COMMIT):
            self.manager.abort(self.txn_id)
        occ_rollback(self.ctx)
        self._finished = True

    # -- context manager ---------------------------------------------------------

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type: type | None, exc: BaseException | None,
                 tb: object | None) -> bool:
        if exc_type is None:
            if not self._finished:
                self.commit()
            return False
        if not self._finished:
            self.abort()
        return False
