"""Common engine interface for the Section 6 comparison.

The paper compares three storage architectures under one protocol
umbrella: **L-Store**, **In-place Update + History** (IUH) and **Delta +
Blocking Merge** (DBM). "For fairness, across all techniques, we have
maintained columnar storage, maintained a single primary index for fast
point lookup, and employed the embedded-indirection column" (Section
6.1). This module defines the uniform :class:`Engine` surface the
benchmark harness drives, plus the adapter that exposes the real
L-Store implementation through it.

Engines are single-table (the micro-benchmark uses one 10-column
table) with integer columns, matching the benchmark of [18, 33].
"""

from __future__ import annotations

import abc
from typing import Any, Iterator, Sequence

from ..core.config import EngineConfig
from ..core.db import Database
from ..core.table import DELETED
from ..core.types import IsolationLevel

#: When set to a list (``repro.bench --metrics`` does), every
#: :class:`LStoreEngine` appends its final engine-metrics snapshot here
#: on close, tagged with the engine name — the harness creates and
#: closes engines internally, so this is the capture point.
METRICS_CAPTURE: list[dict[str, Any]] | None = None


class EngineTransaction(abc.ABC):
    """One transaction against an engine (statement interface)."""

    @abc.abstractmethod
    def read(self, key: int,
             columns: Sequence[int] | None = None) -> dict[int, int] | None:
        """Read the visible version of *key* (None = not visible)."""

    @abc.abstractmethod
    def update(self, key: int, updates: dict[int, int]) -> None:
        """Update columns of the record with *key*."""

    @abc.abstractmethod
    def insert(self, values: Sequence[int]) -> None:
        """Insert a full row."""

    @abc.abstractmethod
    def delete(self, key: int) -> None:
        """Delete the record with *key*."""

    @abc.abstractmethod
    def commit(self) -> bool:
        """Commit; False when validation/conflict forced an abort."""

    @abc.abstractmethod
    def abort(self) -> None:
        """Abort and roll back."""


class Engine(abc.ABC):
    """A single-table storage engine under benchmark."""

    name: str = "engine"

    @abc.abstractmethod
    def load(self, rows: Iterator[Sequence[int]] | list[Sequence[int]],
             ) -> None:
        """Bulk-load the initial table contents (not timed)."""

    @abc.abstractmethod
    def begin(self) -> EngineTransaction:
        """Open a short (read-committed) transaction."""

    @abc.abstractmethod
    def scan_sum(self, column: int) -> int:
        """Analytical SUM over one column (snapshot semantics)."""

    def read_point(self, key: int,
                   columns: Sequence[int] | None = None,
                   ) -> dict[int, int] | None:
        """Auto-commit point read (Table 9 workload)."""
        txn = self.begin()
        try:
            values = txn.read(key, columns)
        finally:
            txn.commit()
        return values

    def maintenance(self) -> None:
        """One synchronous maintenance step (merges), if applicable."""

    def start_background(self) -> None:
        """Start background maintenance threads, if applicable."""

    def stop_background(self) -> None:
        """Stop background maintenance threads."""

    def close(self) -> None:
        """Release resources."""
        self.stop_background()

    # -- shared observability -------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """Engine-specific statistics snapshot."""
        return {"name": self.name}


class LStoreEngine(Engine):
    """The real L-Store implementation behind the uniform interface."""

    name = "L-Store"

    def __init__(self, num_columns: int, *,
                 config: EngineConfig | None = None) -> None:
        self.db = Database(config if config is not None else EngineConfig())
        self.table = self.db.create_table("bench", num_columns, key_index=0)
        self.num_columns = num_columns

    def load(self, rows: Any) -> None:
        """Bulk-load rows through the normal insert path."""
        for row in rows:
            self.table.insert(list(row))
        # Materialise base pages for the loaded data so the benchmark
        # starts from the paper's steady state (read-optimised bases).
        self.db.run_merges()

    def begin(self) -> EngineTransaction:
        return _LStoreTxn(self)

    def scan_sum(self, column: int) -> int:
        return self.table.scan_sum(column)

    def maintenance(self) -> None:
        self.db.run_merges()

    def start_background(self) -> None:
        self.db.merge_engine.start()

    def stop_background(self) -> None:
        self.db.merge_engine.stop(drain=False)

    def close(self) -> None:
        if METRICS_CAPTURE is not None:
            METRICS_CAPTURE.append(
                {"engine": self.name, "metrics": self.metrics()})
        self.db.close()

    def metrics(self) -> dict[str, Any]:
        """The engine-wide metrics snapshot (:meth:`Database.metrics`)."""
        return self.db.metrics()

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "merges": self.db.merge_engine.stat_merges,
            "insert_merges": self.db.merge_engine.stat_insert_merges,
            "unmerged_tails": self.table.unmerged_tail_count(),
            "updates": self.table.stat_updates,
        }


class _LStoreTxn(EngineTransaction):
    """Adapter: EngineTransaction → repro.txn.Transaction."""

    def __init__(self, engine: LStoreEngine) -> None:
        from ..txn.transaction import Transaction
        self._engine = engine
        self._txn = Transaction(engine.db.txn_manager,
                                isolation=IsolationLevel.READ_COMMITTED)

    def read(self, key: int,
             columns: Sequence[int] | None = None) -> dict[int, int] | None:
        values = self._txn.select(self._engine.table, key, columns)
        if values is None or values is DELETED:
            return None
        # select() hands back exactly the requested columns (it strips
        # the key column it fetches for re-validation), so no re-filter
        # pass is owed here.
        return values

    def update(self, key: int, updates: dict[int, int]) -> None:
        self._txn.update(self._engine.table, key, updates)

    def insert(self, values: Sequence[int]) -> None:
        self._txn.insert(self._engine.table, list(values))

    def delete(self, key: int) -> None:
        self._txn.delete(self._engine.table, key)

    def commit(self) -> bool:
        return self._txn.commit()

    def abort(self) -> None:
        self._txn.abort()
