"""Baseline engines of the Section 6 comparison (IUH, DBM, L-Store)."""

from .common import Engine, EngineTransaction, LStoreEngine
from .delta_merge import DeltaMergeEngine
from .inplace_history import InPlaceHistoryEngine

__all__ = [
    "DeltaMergeEngine",
    "Engine",
    "EngineTransaction",
    "InPlaceHistoryEngine",
    "LStoreEngine",
]
