"""Delta + Blocking Merge (DBM) baseline (Section 6.1).

HANA-inspired main + delta organisation: a read-optimised, read-only
**main store** plus per-range write-optimised **delta stores**, with
periodic consolidation. The defining cost the paper measures — and this
implementation preserves — is that "the periodic merging requires the
draining of all active transactions before the merge begins and after
the merge ends": every statement holds a shared gate, the merge takes
the gate exclusively, so transaction processing stalls on every merge,
and the more updates, the more often it stalls.

Per the paper's optimisations, the delta stores are columnar, contain
only the updated columns, and are range-partitioned so a merge touches
only the ranges that changed.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator, Sequence

import numpy as np

from ..errors import DuplicateKeyError, KeyNotFoundError, TransactionAborted
from ..txn.clock import SynchronizedClock
from ..txn.latch import SharedExclusiveLatch
from ..txn.manager import TransactionManager
from .common import Engine, EngineTransaction


class _DeltaEntry:
    """One delta-store row: the updated columns of one record version."""

    __slots__ = ("rid", "time", "values", "is_delete", "is_insert", "valid",
                 "prev")

    def __init__(self, rid: int, time: int, values: dict[int, int],
                 is_delete: bool = False, is_insert: bool = False) -> None:
        self.rid = rid
        self.time = time
        self.values = values
        self.is_delete = is_delete
        self.is_insert = is_insert
        self.valid = True  # cleared when the writing txn aborts
        self.prev: int | None = None


class _RangeStore:
    """Main arrays + delta list for one range of records."""

    def __init__(self, capacity: int, num_columns: int) -> None:
        self.capacity = capacity
        self.main = [np.zeros(capacity, dtype=np.int64)
                     for _ in range(num_columns)]
        self.deleted = np.zeros(capacity, dtype=bool)
        self.exists = np.zeros(capacity, dtype=bool)
        self.delta: list[_DeltaEntry] = []
        #: rid → index of its newest delta entry (read fast path).
        self.delta_latest: dict[int, int] = {}
        self.lock = threading.Lock()
        self.merge_count = 0


class DeltaMergeEngine(Engine):
    """The DBM baseline engine."""

    name = "Delta + Blocking Merge"

    def __init__(self, num_columns: int, *, range_size: int = 4096,
                 merge_threshold: int = 2048,
                 scan_parallelism: int = 1,
                 clock: SynchronizedClock | None = None) -> None:
        from ..exec.executor import ScanExecutor
        self.num_columns = num_columns
        self.range_size = range_size
        self.merge_threshold = merge_threshold
        self._scan_executor = ScanExecutor(scan_parallelism)
        self.clock = clock if clock is not None else SynchronizedClock()
        #: Same transaction-manager protocol as L-Store (paper fairness:
        #: all engines run the concurrency model of [33]).
        self.txn_manager = TransactionManager(self.clock)
        #: The blocking gate: statements shared, merge exclusive.
        self.gate = SharedExclusiveLatch()
        self._ranges: list[_RangeStore] = []
        self._index: dict[int, int] = {}
        self._insert_lock = threading.Lock()
        self._next_rid = 0
        self._merge_queue: list[int] = []
        self._merge_queue_lock = threading.Lock()
        self._merge_thread: threading.Thread | None = None
        self._stop_merge = threading.Event()
        self.stat_merges = 0
        # repro: allow(L003) standalone measured baseline oracle; its write path is the comparison floor and must not pay registry costs
        self.stat_drain_waits = 0

    # -- plumbing ------------------------------------------------------------

    def _locate(self, rid: int) -> tuple[_RangeStore, int]:
        return self._ranges[rid // self.range_size], rid % self.range_size

    def _rid_for(self, key: int) -> int:
        rid = self._index.get(key)
        if rid is None:
            raise KeyNotFoundError("no record with key %r" % (key,))
        return rid

    # -- loading ------------------------------------------------------------

    def load(self, rows: Any) -> None:
        """Bulk-load directly into the main store (not timed)."""
        for row in rows:
            values = list(row)
            if values[0] in self._index:
                raise DuplicateKeyError("duplicate key %r" % (values[0],))
            with self._insert_lock:
                rid = self._next_rid
                self._next_rid += 1
                while rid // self.range_size >= len(self._ranges):
                    self._ranges.append(
                        _RangeStore(self.range_size, self.num_columns))
            store, slot = self._locate(rid)
            for column, value in enumerate(values):
                store.main[column][slot] = value
            store.exists[slot] = True
            self._index[values[0]] = rid

    # -- statement operations (gate-shared) ----------------------------------------

    def read_record(self, rid: int,
                    columns: Sequence[int] | None = None,
                    ) -> dict[int, int] | None:
        """Read delta-over-main under the shared gate (caller holds it)."""
        store, slot = self._locate(rid)
        wanted = list(range(self.num_columns)) if columns is None \
            else list(columns)
        with store.lock:
            entry_index = store.delta_latest.get(rid)
            overlay: dict[int, int] = {}
            deleted = bool(store.deleted[slot])
            exists = bool(store.exists[slot])
            while entry_index is not None:
                entry = store.delta[entry_index]
                if entry.valid:
                    if entry.is_delete:
                        return None
                    for column, value in entry.values.items():
                        overlay.setdefault(column, value)
                    if entry.is_insert:
                        exists = True
                        deleted = False
                        break  # inserts carry the full row
                    if all(column in overlay for column in wanted):
                        break
                entry_index = entry.prev
        if deleted or not exists:
            return None
        return {column: overlay.get(column,
                                    int(store.main[column][slot]))
                for column in wanted}

    def write_record(self, rid: int, updates: dict[int, int],
                     time: int, *, is_delete: bool = False,
                     is_insert: bool = False) -> _DeltaEntry:
        """Append one delta entry (caller holds the shared gate)."""
        store, slot = self._locate(rid)
        entry = _DeltaEntry(rid, time, dict(updates), is_delete, is_insert)
        with store.lock:
            entry.prev = store.delta_latest.get(rid)  # type: ignore[attr-defined]
            store.delta.append(entry)
            store.delta_latest[rid] = len(store.delta) - 1
            delta_size = len(store.delta)
        if delta_size >= self.merge_threshold:
            self._schedule_merge(rid // self.range_size)
        return entry

    # -- the blocking merge -------------------------------------------------------

    def _schedule_merge(self, range_index: int) -> None:
        with self._merge_queue_lock:
            if range_index not in self._merge_queue:
                self._merge_queue.append(range_index)

    def merge_range(self, range_index: int) -> bool:
        """Consolidate one range — draining ALL active transactions.

        The exclusive gate acquisition blocks until every in-flight
        statement releases its shared hold, and keeps new statements out
        until the merge finishes: the paper's defining DBM cost.
        """
        # repro: allow(L003) baseline oracle hot path; a plain int under the gate keeps the measured DBM drain cost honest
        self.stat_drain_waits += 1
        self.gate.acquire_exclusive()
        try:
            store = self._ranges[range_index]
            for entry in store.delta:
                if not entry.valid:
                    continue
                slot = entry.rid % self.range_size
                if entry.is_delete:
                    store.deleted[slot] = True
                    for column in range(self.num_columns):
                        store.main[column][slot] = 0
                    continue
                if entry.is_insert:
                    store.exists[slot] = True
                    store.deleted[slot] = False
                for column, value in entry.values.items():
                    store.main[column][slot] = value
            store.delta = []
            store.delta_latest = {}
            store.merge_count += 1
            self.stat_merges += 1
            return True
        finally:
            self.gate.release_exclusive()

    def maintenance(self) -> None:
        """Merge every queued range (each merge drains the system)."""
        while True:
            with self._merge_queue_lock:
                if not self._merge_queue:
                    return
                range_index = self._merge_queue.pop(0)
            self.merge_range(range_index)

    def start_background(self) -> None:
        if self._merge_thread is not None:
            return
        self._stop_merge.clear()

        def loop() -> None:
            while not self._stop_merge.is_set():
                self.maintenance()
                self._stop_merge.wait(0.001)

        self._merge_thread = threading.Thread(target=loop, daemon=True,
                                              name="dbm-merge")
        self._merge_thread.start()

    def stop_background(self) -> None:
        if self._merge_thread is None:
            return
        self._stop_merge.set()
        self._merge_thread.join(timeout=5.0)
        self._merge_thread = None

    # -- engine interface ------------------------------------------------------------

    def begin(self) -> EngineTransaction:
        return _DBMTxn(self)

    def scan_sum(self, column: int) -> int:
        """Snapshot SUM under the shared gate (blocks merges meanwhile).

        Range stores are independent, so the per-store partials run
        through the shared scan executor — the same partitioned plan
        shape as L-Store's executor, minus the epochs (the shared gate
        already blocks merges for the duration).
        """
        from functools import partial
        self.gate.acquire_shared()
        try:
            stores = list(self._ranges)
            tasks = [partial(self._scan_store_sum, store, column)
                     for store in stores]
            return sum(self._scan_executor.map(tasks))
        finally:
            self.gate.release_shared()

    def _scan_store_sum(self, store: _RangeStore, column: int) -> int:
        """Partition unit: main-array SUM plus delta corrections."""
        alive = store.exists & ~store.deleted
        total = int(store.main[column][alive].sum())
        with store.lock:
            latest = dict(store.delta_latest)
        for rid, entry_index in latest.items():
            slot = rid % self.range_size
            main_part = int(store.main[column][slot]) \
                if alive[slot] else 0
            # Resolve the delta-visible value of this record.
            visible: int | None = None  # None = fall to main
            is_deleted = False
            row_exists = bool(alive[slot])
            index: int | None = entry_index
            newest_seen = False
            while index is not None:
                entry = store.delta[index]
                if entry.valid:
                    if not newest_seen:
                        newest_seen = True
                        if entry.is_delete:
                            is_deleted = True
                            break
                    if column in entry.values and visible is None:
                        visible = entry.values[column]
                    if entry.is_insert:
                        row_exists = True
                        break
                index = entry.prev
            if is_deleted:
                total -= main_part
            elif not row_exists:
                continue  # aborted insert: contributes nothing
            elif visible is not None:
                total += visible - main_part
            elif not alive[slot]:
                # Inserted row whose column came only from main
                # defaults (cannot happen: inserts carry all
                # columns) — defensive no-op.
                continue
        return total

    def close(self) -> None:
        self.stop_background()
        self._scan_executor.close()

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "merges": self.stat_merges,
            "ranges": len(self._ranges),
            "pending_delta": sum(len(store.delta)
                                 for store in self._ranges),
        }


class _DBMTxn(EngineTransaction):
    """Gate-shared transaction; abort invalidates its delta entries."""

    def __init__(self, engine: DeltaMergeEngine) -> None:
        self._engine = engine
        self._entry = engine.txn_manager.begin()
        self._entries: list[_DeltaEntry] = []
        self._inserted_keys: list[int] = []
        self._finished = False

    def _with_gate(self, fn: Any) -> Any:
        self._engine.gate.acquire_shared()
        try:
            return fn()
        finally:
            self._engine.gate.release_shared()

    def read(self, key: int,
             columns: Sequence[int] | None = None) -> dict[int, int] | None:
        rid = self._engine._index.get(key)
        if rid is None:
            return None
        return self._with_gate(
            lambda: self._engine.read_record(rid, columns))

    def update(self, key: int, updates: dict[int, int]) -> None:
        rid = self._engine._rid_for(key)
        entry = self._with_gate(
            lambda: self._engine.write_record(
                rid, updates, self._engine.clock.advance()))
        self._entries.append(entry)

    def insert(self, values: Sequence[int]) -> None:
        values = list(values)
        key = values[0]
        if key in self._engine._index:
            raise DuplicateKeyError("duplicate key %r" % (key,))
        with self._engine._insert_lock:
            rid = self._engine._next_rid
            self._engine._next_rid += 1
            while rid // self._engine.range_size >= len(self._engine._ranges):
                self._engine._ranges.append(
                    _RangeStore(self._engine.range_size,
                                self._engine.num_columns))
        entry = self._with_gate(
            lambda: self._engine.write_record(
                rid, dict(enumerate(values)),
                self._engine.clock.advance(), is_insert=True))
        self._entries.append(entry)
        self._engine._index[key] = rid
        self._inserted_keys.append(key)

    def delete(self, key: int) -> None:
        rid = self._engine._rid_for(key)
        entry = self._with_gate(
            lambda: self._engine.write_record(
                rid, {}, self._engine.clock.advance(), is_delete=True))
        self._entries.append(entry)

    def commit(self) -> bool:
        if self._finished:
            return True
        self._engine.txn_manager.enter_precommit(self._entry.txn_id)
        self._engine.txn_manager.commit(self._entry.txn_id)
        self._finished = True
        return True

    def abort(self) -> None:
        if self._finished:
            return
        self._engine.txn_manager.abort(self._entry.txn_id)
        for entry in self._entries:
            entry.valid = False
        for key in self._inserted_keys:
            self._engine._index.pop(key, None)
        self._finished = True
