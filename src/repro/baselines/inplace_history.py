"""In-place Update + History (IUH) baseline (Section 6.1).

"A prominent storage organization is to append old versions of records
to a history table and only retain the most recent version in the main
table, updating it in-place", as in Oracle Flashback Archive. The
defining costs the paper measures — and this implementation preserves:

* every statement latches the page it touches: **shared for reads,
  exclusive for writes** ("due to the nature of the in-place update
  approach, each page requires standard shared and exclusive latches");
  even 100%-read workloads keep paying the shared-latch cost;
* aborts must **undo** the in-place change and restore the previous
  record (L-Store and DBM are redo-only);
* snapshot scans chase old versions into a **single history table**,
  with "reduced locality for reads and more cache misses".

Per the paper's fairness rules the storage is columnar (NumPy column
arrays per page), a single primary index exists, an embedded
indirection column links main-table records to their history chain, and
the history table stores only the updated columns.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator, Sequence

import numpy as np

from ..errors import DuplicateKeyError, KeyNotFoundError, TransactionAborted
from ..txn.clock import SynchronizedClock
from ..txn.latch import SharedExclusiveLatch
from ..txn.manager import TransactionManager
from .common import Engine, EngineTransaction

#: History-chain terminator.
_NO_HISTORY = -1


class _MainPage:
    """One latched page of the main table: columnar, updated in place."""

    __slots__ = ("capacity", "columns", "start_time", "indirection",
                 "deleted", "latch", "num_records")

    def __init__(self, capacity: int, num_columns: int) -> None:
        self.capacity = capacity
        self.columns = [np.zeros(capacity, dtype=np.int64)
                        for _ in range(num_columns)]
        self.start_time = np.zeros(capacity, dtype=np.int64)
        self.indirection = np.full(capacity, _NO_HISTORY, dtype=np.int64)
        self.deleted = np.zeros(capacity, dtype=bool)
        self.latch = SharedExclusiveLatch()
        self.num_records = 0


class _HistoryTable:
    """Append-only history of pre-update values (updated columns only)."""

    def __init__(self) -> None:
        self._prev: list[int] = []
        self._time: list[int] = []
        self._values: list[dict[int, int]] = []
        self._deleted: list[bool] = []
        self._lock = threading.Lock()

    def append(self, prev: int, time: int, values: dict[int, int],
               deleted: bool) -> int:
        """Store one old version; return its history rid."""
        with self._lock:
            hrid = len(self._time)
            self._prev.append(prev)
            self._time.append(time)
            self._values.append(values)
            self._deleted.append(deleted)
            return hrid

    def version(self, hrid: int) -> tuple[int, int, dict[int, int], bool]:
        """Return (prev, time, values, deleted) of one history row."""
        return (self._prev[hrid], self._time[hrid], self._values[hrid],
                self._deleted[hrid])

    def __len__(self) -> int:
        return len(self._time)


class InPlaceHistoryEngine(Engine):
    """The IUH baseline engine."""

    name = "In-place Update + History"

    def __init__(self, num_columns: int, *, records_per_page: int = 4096,
                 scan_parallelism: int = 1,
                 clock: SynchronizedClock | None = None) -> None:
        from ..exec.executor import ScanExecutor
        if num_columns < 1:
            raise ValueError("need at least the key column")
        self.num_columns = num_columns
        self.records_per_page = records_per_page
        self._scan_executor = ScanExecutor(scan_parallelism)
        self.clock = clock if clock is not None else SynchronizedClock()
        #: Same transaction-manager protocol as L-Store (paper fairness:
        #: all engines run the concurrency model of [33]).
        self.txn_manager = TransactionManager(self.clock)
        self._pages: list[_MainPage] = []
        self.history = _HistoryTable()
        self._index: dict[int, int] = {}
        self._insert_lock = threading.Lock()
        #: (rid, time) log of recent changes, consumed by snapshot scans.
        self._recent: list[tuple[int, int]] = []
        self._recent_lock = threading.Lock()
        self.stat_reads = 0
        self.stat_writes = 0

    # -- plumbing ------------------------------------------------------------

    def _locate(self, rid: int) -> tuple[_MainPage, int]:
        return (self._pages[rid // self.records_per_page],
                rid % self.records_per_page)

    def _rid_for(self, key: int) -> int:
        rid = self._index.get(key)
        if rid is None:
            raise KeyNotFoundError("no record with key %r" % (key,))
        return rid

    # -- loading ------------------------------------------------------------

    def load(self, rows: Any) -> None:
        """Bulk-load without latching (not timed)."""
        for row in rows:
            self._insert_row(list(row), self.clock.advance(), latched=False)

    def _insert_row(self, values: list[int], time: int, *,
                    latched: bool = True) -> int:
        if values[0] in self._index:
            raise DuplicateKeyError("duplicate key %r" % (values[0],))
        with self._insert_lock:
            if not self._pages or \
                    self._pages[-1].num_records >= self.records_per_page:
                self._pages.append(_MainPage(self.records_per_page,
                                             self.num_columns))
            page = self._pages[-1]
            slot = page.num_records
            page.num_records += 1
            rid = (len(self._pages) - 1) * self.records_per_page + slot
        if latched:
            page.latch.acquire_exclusive()
        try:
            for column, value in enumerate(values):
                page.columns[column][slot] = value
            page.start_time[slot] = time
        finally:
            if latched:
                page.latch.release_exclusive()
        self._index[values[0]] = rid
        return rid

    # -- statement operations (page-latched) -----------------------------------

    def read_record(self, rid: int,
                    columns: Sequence[int] | None = None,
                    ) -> dict[int, int] | None:
        """Latched point read of the current version."""
        page, slot = self._locate(rid)
        page.latch.acquire_shared()
        try:
            if page.deleted[slot]:
                return None
            wanted = range(self.num_columns) if columns is None else columns
            self.stat_reads += 1
            return {column: int(page.columns[column][slot])
                    for column in wanted}
        finally:
            page.latch.release_shared()

    def write_record(self, rid: int, updates: dict[int, int],
                     time: int) -> dict[str, Any]:
        """Latched in-place write; returns the undo image."""
        page, slot = self._locate(rid)
        page.latch.acquire_exclusive()
        try:
            if page.deleted[slot]:
                raise TransactionAborted("record %d deleted" % rid)
            old_values = {column: int(page.columns[column][slot])
                          for column in updates}
            old_time = int(page.start_time[slot])
            old_indirection = int(page.indirection[slot])
            hrid = self.history.append(old_indirection, old_time,
                                       old_values, deleted=False)
            for column, value in updates.items():
                page.columns[column][slot] = value
            page.start_time[slot] = time
            page.indirection[slot] = hrid
            self.stat_writes += 1
        finally:
            page.latch.release_exclusive()
        with self._recent_lock:
            self._recent.append((rid, time))
        return {"rid": rid, "values": old_values, "time": old_time,
                "indirection": old_indirection, "deleted": False}

    def delete_record(self, rid: int, time: int) -> dict[str, Any]:
        """Latched in-place delete (history keeps the old row)."""
        page, slot = self._locate(rid)
        page.latch.acquire_exclusive()
        try:
            old_values = {column: int(page.columns[column][slot])
                          for column in range(self.num_columns)}
            old_time = int(page.start_time[slot])
            old_indirection = int(page.indirection[slot])
            hrid = self.history.append(old_indirection, old_time,
                                       old_values, deleted=False)
            for column in range(self.num_columns):
                page.columns[column][slot] = 0
            page.deleted[slot] = True
            page.start_time[slot] = time
            page.indirection[slot] = hrid
        finally:
            page.latch.release_exclusive()
        with self._recent_lock:
            self._recent.append((rid, time))
        return {"rid": rid, "values": old_values, "time": old_time,
                "indirection": old_indirection, "deleted": True}

    def undo(self, image: dict[str, Any]) -> None:
        """Abort path: restore the pre-statement record in place."""
        rid = image["rid"]
        page, slot = self._locate(rid)
        page.latch.acquire_exclusive()
        try:
            for column, value in image["values"].items():
                page.columns[column][slot] = value
            page.start_time[slot] = image["time"]
            page.indirection[slot] = image["indirection"]
            if image["deleted"]:
                page.deleted[slot] = False
        finally:
            page.latch.release_exclusive()

    # -- version chase (snapshot reads) -------------------------------------------

    def version_at(self, rid: int, column: int,
                   as_of: int) -> int | None:
        """Value of *column* at time *as_of*, chasing the history chain."""
        page, slot = self._locate(rid)
        page.latch.acquire_shared()
        try:
            time = int(page.start_time[slot])
            deleted = bool(page.deleted[slot])
            value = int(page.columns[column][slot])
            hrid = int(page.indirection[slot])
        finally:
            page.latch.release_shared()
        overlay: int | None = None
        while time > as_of:
            if hrid == _NO_HISTORY:
                return None  # record did not exist at as_of
            hrid, time, values, _ = self.history.version(hrid)
            if column in values:
                overlay = values[column]
            deleted = False
        if deleted:
            return None
        return overlay if overlay is not None else value

    # -- engine interface ------------------------------------------------------------

    def begin(self) -> EngineTransaction:
        return _IUHTxn(self)

    def scan_sum(self, column: int) -> int:
        """Snapshot SUM: latched page sums + history corrections.

        The per-page partials run through the shared scan executor
        (pages are independent under their own latches); the history
        correction pass stays serial — it is proportional to recent
        changes, not table size.
        """
        from functools import partial
        as_of = self.clock.now()

        def page_sum(page: _MainPage) -> int:
            page.latch.acquire_shared()
            try:
                return int(page.columns[column][:page.num_records].sum())
            finally:
                page.latch.release_shared()

        tasks = [partial(page_sum, page) for page in list(self._pages)]
        total = sum(self._scan_executor.map(tasks))
        # Correct records that changed after the snapshot began.
        with self._recent_lock:
            recent = [(rid, t) for rid, t in self._recent if t > as_of]
        for rid in {rid for rid, _ in recent}:
            page, slot = self._locate(rid)
            page.latch.acquire_shared()
            try:
                current = 0 if page.deleted[slot] \
                    else int(page.columns[column][slot])
            finally:
                page.latch.release_shared()
            old = self.version_at(rid, column, as_of)
            total += (old if old is not None else 0) - current
        return total

    def maintenance(self) -> None:
        """Prune the recent-changes log (no merge process in IUH)."""
        horizon = self.clock.now()
        with self._recent_lock:
            self._recent = [(rid, t) for rid, t in self._recent
                            if t > horizon - 10_000]

    def close(self) -> None:
        self.stop_background()
        self._scan_executor.close()

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "history_rows": len(self.history),
            "pages": len(self._pages),
            "reads": self.stat_reads,
            "writes": self.stat_writes,
        }


class _IUHTxn(EngineTransaction):
    """Statement-latched transaction with undo-based abort."""

    def __init__(self, engine: InPlaceHistoryEngine) -> None:
        self._engine = engine
        self._entry = engine.txn_manager.begin()
        self._undo: list[dict[str, Any]] = []
        self._inserted: list[int] = []
        self._finished = False

    def read(self, key: int,
             columns: Sequence[int] | None = None) -> dict[int, int] | None:
        rid = self._engine._index.get(key)
        if rid is None:
            return None
        return self._engine.read_record(rid, columns)

    def update(self, key: int, updates: dict[int, int]) -> None:
        rid = self._engine._rid_for(key)
        image = self._engine.write_record(rid, updates,
                                          self._engine.clock.advance())
        self._undo.append(image)

    def insert(self, values: Sequence[int]) -> None:
        rid = self._engine._insert_row(list(values),
                                       self._engine.clock.advance())
        self._inserted.append(rid)

    def delete(self, key: int) -> None:
        rid = self._engine._rid_for(key)
        image = self._engine.delete_record(rid,
                                           self._engine.clock.advance())
        self._undo.append(image)

    def commit(self) -> bool:
        if self._finished:
            return True
        self._engine.txn_manager.enter_precommit(self._entry.txn_id)
        self._engine.txn_manager.commit(self._entry.txn_id)
        self._finished = True
        return True

    def abort(self) -> None:
        if self._finished:
            return
        self._engine.txn_manager.abort(self._entry.txn_id)
        for image in reversed(self._undo):
            self._engine.undo(image)
        for rid in reversed(self._inserted):
            page, slot = self._engine._locate(rid)
            page.latch.acquire_exclusive()
            try:
                key = int(page.columns[0][slot])
                page.deleted[slot] = True
            finally:
                page.latch.release_exclusive()
            self._engine._index.pop(key, None)
        self._finished = True
